//! Fused multi-program verification pass (codes `M0xx`).
//!
//! A [`MultiEngine`] compiles a whole query batch into per-query flat
//! programs fed by a **deduplicated pool** of matcher units. That adds
//! two failure modes a single-engine lint cannot see: a lane's program
//! could be miswired against the shared pool, and the deduplication
//! census could be wrong (two *different* automata merged, or identical
//! ones duplicated). This pass re-proves both from the outside:
//!
//! * every lane's program snapshot is checked with the same structural
//!   invariants as a single engine (post-order, latch-clear coverage,
//!   …), and its pool-resident dense tables are compared against
//!   automata freshly derived from that lane's source expression — a
//!   merge of two different automata cannot survive this, because at
//!   least one lane's stored table would disagree with its own fresh
//!   derivation;
//! * the pool census is compared against an **independent** dedup
//!   census computed straight from the source expressions (bit-exact
//!   unit keys re-derived from the primitives, never from the compiled
//!   plan), and the per-query censuses must sum to the batch total.
//!
//! ## Diagnostic catalogue
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | M000 | info     | unit-sharing summary (total/pool/shared) |
//! | M001 | error    | a lane's flat program violates a structural invariant |
//! | M002 | error    | a lane's census or pool-stored table disagrees with its expression |
//! | M003 | error    | pool dedup census disagrees with independent recomputation |

use crate::program::{check_unit, collect_expected, ExpectedUnits};
use crate::{Diagnostic, Layer, Report};
use rfjson_core::backend::CompileError;
use rfjson_core::expr::{Expr, StringTechnique};
use rfjson_core::multi::{MultiEngine, UnitCounts};
use rfjson_core::primitive::{DfaStringMatcher, SubstringMatcher};
use std::collections::HashSet;

/// An independently re-derived dedup key: bit-exact builder output
/// recomputed from the source primitive, bypassing the compiled plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum FreshKey {
    StrDfa {
        table: Vec<u16>,
        start: u16,
    },
    NumDfa {
        table: Vec<u16>,
        start: u16,
    },
    Sub1 {
        bitmap: [u64; 4],
        target: u32,
    },
    Subp {
        mask: u64,
        blocks: Vec<u64>,
        target: u32,
    },
    Wide {
        needle: Vec<u8>,
        block: usize,
    },
}

/// Collects the dedup keys of every primitive unit of `expr`, exactly
/// as the engine builder would derive them (same bitmap/packing rules),
/// in visit order.
fn collect_keys(expr: &Expr, out: &mut Vec<FreshKey>) {
    match expr {
        Expr::Str(spec) => match spec.technique {
            StringTechnique::Dfa | StringTechnique::Window => {
                let d = DfaStringMatcher::new(&spec.needle).dfa().clone();
                out.push(FreshKey::StrDfa {
                    table: d.dense_table(),
                    start: d.dense_start(),
                });
            }
            StringTechnique::Substring(b) => {
                let m = SubstringMatcher::new(&spec.needle, b)
                    .expect("expression was validated at compile time");
                if b == 1 {
                    let mut bitmap = [0u64; 4];
                    for blk in m.blocks() {
                        let x = blk[0];
                        bitmap[(x >> 6) as usize] |= 1u64 << (x & 63);
                    }
                    out.push(FreshKey::Sub1 {
                        bitmap,
                        target: m.target(),
                    });
                } else if b <= 8 {
                    let blocks = m
                        .blocks()
                        .iter()
                        .map(|blk| blk.iter().fold(0u64, |p, &x| (p << 8) | u64::from(x)))
                        .collect();
                    out.push(FreshKey::Subp {
                        mask: if b == 8 {
                            u64::MAX
                        } else {
                            (1u64 << (8 * b)) - 1
                        },
                        blocks,
                        target: m.target(),
                    });
                } else {
                    out.push(FreshKey::Wide {
                        needle: spec.needle.clone(),
                        block: b,
                    });
                }
            }
        },
        Expr::Num(bounds) => {
            let d = bounds.to_dfa();
            out.push(FreshKey::NumDfa {
                table: d.dense_table(),
                start: d.dense_start(),
            });
        }
        Expr::And(cs) | Expr::Or(cs) | Expr::Ctx(cs, _) => {
            for c in cs {
                collect_keys(c, out);
            }
        }
    }
}

/// The per-kind distinct-key census of an independent dedup pass.
fn dedup_census(keys: &[FreshKey]) -> UnitCounts {
    let distinct: HashSet<&FreshKey> = keys.iter().collect();
    let mut counts = UnitCounts::default();
    for key in distinct {
        match key {
            FreshKey::StrDfa { .. } => counts.string_dfas += 1,
            FreshKey::NumDfa { .. } => counts.number_dfas += 1,
            FreshKey::Sub1 { .. } => counts.sub1 += 1,
            FreshKey::Subp { .. } => counts.subp += 1,
            FreshKey::Wide { .. } => counts.wide += 1,
        }
    }
    counts
}

/// Verifies a compiled fused batch: per-lane structural invariants
/// (M001), per-lane census + pool-table agreement with each lane's
/// source expression (M002), and the pool dedup census against an
/// independent recomputation from the source expressions (M003).
pub fn verify_multi_engine(fused: &MultiEngine) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let stats = fused.share_stats();
    out.push(Diagnostic::info(
        Layer::Program,
        "M000",
        "batch",
        format!(
            "{} queries demand {} units; pool instantiates {} ({} shared)",
            fused.num_queries(),
            stats.total_units(),
            stats.pool.total(),
            stats.shared_units()
        ),
    ));

    for (q, (view, expr)) in fused.lane_views().iter().zip(fused.exprs()).enumerate() {
        for fault in view.check() {
            out.push(Diagnostic::error(
                Layer::Program,
                "M001",
                &format!("lane {q}"),
                format!("`{expr}`: {fault}"),
            ));
        }

        let mut exp = ExpectedUnits::default();
        collect_expected(expr, &mut exp);
        let censuses = [
            ("string-dfa", view.string_dfas.len(), exp.string_dfas.len()),
            ("number-dfa", view.number_dfas.len(), exp.number_dfas.len()),
            ("substring-b1", view.sub1_nodes.len(), exp.sub1),
            ("substring-packed", view.subp_nodes.len(), exp.subp),
            ("substring-wide", view.wide_nodes.len(), exp.wide),
        ];
        for (kind, got, want) in censuses {
            if got != want {
                out.push(Diagnostic::error(
                    Layer::Program,
                    "M002",
                    &format!("lane {q}"),
                    format!("{kind} unit count {got}, expression has {want}"),
                ));
            }
        }
        // The lane's DFA units live in the shared pool; each one must
        // still equal the automaton freshly derived from *this* lane's
        // expression, which rules out any dedup merge of two different
        // automata.
        let mut unit_diags = Vec::new();
        for (i, (unit, fresh)) in view.string_dfas.iter().zip(&exp.string_dfas).enumerate() {
            check_unit("string-dfa", i, unit, fresh, &view.tables, &mut unit_diags);
        }
        for (i, (unit, fresh)) in view.number_dfas.iter().zip(&exp.number_dfas).enumerate() {
            check_unit("number-dfa", i, unit, fresh, &view.tables, &mut unit_diags);
        }
        for mut d in unit_diags {
            d.code = "M002";
            d.location = format!("lane {q}: {}", d.location);
            out.push(d);
        }
    }

    // Independent dedup census: recompute every unit key straight from
    // the source expressions and compare distinct-key counts with the
    // pool the compiler actually built.
    let mut keys = Vec::new();
    let mut per_query_total = 0usize;
    for (q, expr) in fused.exprs().iter().enumerate() {
        let before = keys.len();
        collect_keys(expr, &mut keys);
        let demanded = keys.len() - before;
        let counted = stats.per_query.get(q).map_or(0, UnitCounts::total);
        per_query_total += counted;
        if demanded != counted {
            out.push(Diagnostic::error(
                Layer::Program,
                "M003",
                &format!("lane {q}"),
                format!("census claims {counted} units, expression has {demanded}"),
            ));
        }
    }
    if per_query_total != stats.total_units() {
        out.push(Diagnostic::error(
            Layer::Program,
            "M003",
            "batch",
            format!(
                "per-query censuses sum to {per_query_total}, batch total is {}",
                stats.total_units()
            ),
        ));
    }
    let independent = dedup_census(&keys);
    if independent != stats.pool {
        out.push(Diagnostic::error(
            Layer::Program,
            "M003",
            "batch",
            format!(
                "pool census {:?} disagrees with independent dedup {:?}",
                stats.pool, independent
            ),
        ));
    }
    out
}

/// Lints a query batch end to end: compiles it into a [`MultiEngine`]
/// and runs the M0xx pass.
///
/// # Errors
///
/// Propagates the [`CompileError`] of an empty or ill-formed batch.
pub fn verify_batch(exprs: &[Expr], name: &str) -> Result<Report, CompileError> {
    let fused = MultiEngine::try_compile_batch(exprs)?;
    let mut report = Report::new(name);
    report.diagnostics = verify_multi_engine(&fused);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn batch() -> Vec<Expr> {
        vec![
            Expr::context([
                Expr::substring(b"temperature", 1).unwrap(),
                Expr::float_range("0.7", "35.1").unwrap(),
            ]),
            Expr::context([
                Expr::substring(b"temperature", 1).unwrap(),
                Expr::float_range("50.0", "99.0").unwrap(),
            ]),
            Expr::and([
                Expr::dfa_string(b"dust").unwrap(),
                Expr::substring(b"tolls_amount", 2).unwrap(),
                Expr::int_range(12, 49),
            ]),
        ]
    }

    #[test]
    fn clean_batch_verifies_clean() {
        let report = verify_batch(&batch(), "zoo").unwrap();
        assert!(!report.has_errors(), "{report}");
        assert!(
            report.diagnostics.iter().any(|d| d.code == "M000"),
            "sharing summary present"
        );
    }

    #[test]
    fn independent_census_counts_sharing() {
        let exprs = batch();
        let mut keys = Vec::new();
        for e in &exprs {
            collect_keys(e, &mut keys);
        }
        // Lanes 0 and 1 share the temperature sub1 key.
        assert_eq!(keys.len(), 7);
        assert_eq!(dedup_census(&keys).total(), 6);
    }

    #[test]
    fn empty_batch_is_a_compile_error() {
        assert!(verify_batch(&[], "empty").is_err());
    }

    #[test]
    fn independent_census_is_sensitive() {
        // The M003 comparison must be able to tell a correct pool from a
        // miscounted one: the census over a truncated batch (one lane
        // dropped) differs from the compiled pool, and a duplicated
        // needle with a *different* range keeps the automata distinct.
        let fused = MultiEngine::compile_batch(&batch());
        assert!(verify_multi_engine(&fused)
            .iter()
            .all(|d| d.severity < Severity::Warning));
        let mut keys = Vec::new();
        collect_keys(&batch()[2], &mut keys);
        assert_ne!(dedup_census(&keys), fused.share_stats().pool);
        // Two different float ranges must stay two distinct NumDfa keys.
        let mut nums = Vec::new();
        collect_keys(&batch()[0], &mut nums);
        collect_keys(&batch()[1], &mut nums);
        assert_eq!(dedup_census(&nums).number_dfas, 2);
    }
}

//! Netlist verification pass (codes `N0xx`).
//!
//! Operates on the elaborated gate-level [`Netlist`] — the artifact that
//! would be synthesised onto the FPGA. Checks here are circuit-shaped:
//! no combinational cycles (proved by topological sort over the
//! combinational edges, flip-flop data edges excluded), every flip-flop
//! connected, no output net driven twice, nothing dangling. A summary
//! diagnostic carries the gate/FF/depth/fanout statistics the paper's
//! resource tables are built from.
//!
//! ## Diagnostic catalogue
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | N001 | error    | combinational cycle |
//! | N002 | error    | flip-flop data input unconnected |
//! | N003 | error    | output net driven more than once |
//! | N004 | error    | node operand out of range |
//! | N005 | warning  | primary input drives nothing |
//! | N006 | warning  | gate or flip-flop drives nothing (dead logic) |
//! | N007 | info     | netlist statistics summary |

use crate::{Diagnostic, Layer};
use rfjson_rtl::netlist::Node;
use rfjson_rtl::stats::NetlistStats;
use rfjson_rtl::Netlist;
use std::collections::HashMap;
use std::fmt;

/// How many members of a combinational cycle to name in the diagnostic.
const CYCLE_NAME_CAP: usize = 8;

/// Headline numbers of one verified netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetlistSummary {
    /// Combinational gates (AND/OR/XOR/NOT/MUX).
    pub gates: usize,
    /// Flip-flops.
    pub dffs: usize,
    /// Primary input bits.
    pub inputs: usize,
    /// Declared output bits.
    pub outputs: usize,
    /// Longest combinational path in gate levels.
    pub depth: usize,
    /// Largest fan-out of any node.
    pub max_fanout: usize,
}

impl fmt::Display for NetlistSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates, {} FFs, {} inputs, {} outputs, depth {}, max fanout {}",
            self.gates, self.dffs, self.inputs, self.outputs, self.depth, self.max_fanout
        )
    }
}

/// Computes the summary statistics of `n`.
pub fn netlist_summary(n: &Netlist) -> NetlistSummary {
    let stats = NetlistStats::of(n);
    NetlistSummary {
        gates: stats.total_gates(),
        dffs: stats.dffs,
        inputs: stats.inputs,
        outputs: stats.outputs,
        depth: stats.depth,
        max_fanout: n.fanout_counts().into_iter().max().unwrap_or(0),
    }
}

/// Verifies one netlist: combinational acyclicity, connectivity, driver
/// uniqueness, and dead-logic hygiene. Ends with the [`NetlistSummary`]
/// as an info diagnostic.
pub fn verify_netlist(n: &Netlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let len = n.len();
    let name = n.name().to_string();

    // N004 — every referenced operand must exist. The builder API makes
    // this unconstructable, but the pass also guards hand-built or
    // deserialised netlists.
    for (id, node) in n.nodes() {
        let mut operands = node.comb_fanin();
        if let Node::Dff { d: Some(d), .. } = node {
            operands.push(*d);
        }
        for op in operands {
            if op.index() >= len {
                out.push(Diagnostic::error(
                    Layer::Netlist,
                    "N004",
                    &format!("{name}/{id}"),
                    format!("operand {op} out of range ({len} nodes)"),
                ));
            }
        }
    }
    for (port, id) in n.inputs().iter().chain(n.outputs()) {
        if id.index() >= len {
            out.push(Diagnostic::error(
                Layer::Netlist,
                "N004",
                &format!("{name}/{port}"),
                format!("port references node {id} out of range ({len} nodes)"),
            ));
        }
    }
    if out.iter().any(|d| d.code == "N004") {
        return out; // Graph traversals below assume in-range edges.
    }

    // N001 — combinational cycles.
    if let Err(cycle) = n.comb_topo_order() {
        let mut names: Vec<String> = cycle
            .iter()
            .take(CYCLE_NAME_CAP)
            .map(ToString::to_string)
            .collect();
        if cycle.len() > CYCLE_NAME_CAP {
            names.push(format!("… {} more", cycle.len() - CYCLE_NAME_CAP));
        }
        out.push(Diagnostic::error(
            Layer::Netlist,
            "N001",
            &name,
            format!(
                "combinational cycle through {} node(s): {}",
                cycle.len(),
                names.join(", ")
            ),
        ));
    }

    // N002 — unconnected flip-flops.
    for (id, node) in n.nodes() {
        if matches!(node, Node::Dff { d: None, .. }) {
            out.push(Diagnostic::error(
                Layer::Netlist,
                "N002",
                &format!("{name}/{id}"),
                "flip-flop data input never connected".to_string(),
            ));
        }
    }

    // N003 — multi-driven output nets (the only multi-driver the flat
    // representation can express: one port name registered twice).
    let mut drivers: HashMap<&str, usize> = HashMap::new();
    for (port, _) in n.outputs() {
        *drivers.entry(port.as_str()).or_insert(0) += 1;
    }
    let mut multi: Vec<(&str, usize)> = drivers.into_iter().filter(|&(_, c)| c > 1).collect();
    multi.sort_unstable();
    for (port, count) in multi {
        out.push(Diagnostic::error(
            Layer::Netlist,
            "N003",
            &format!("{name}/{port}"),
            format!("output net driven {count} times"),
        ));
    }

    // N005/N006 — dead logic. Constants are exempt: folding legitimately
    // strands them and they cost nothing. Dead gates/FFs are aggregated
    // into one warning per netlist (synthesis would trim them; the
    // finding is about elaborator hygiene, not per-gate soundness).
    let fanout = n.fanout_counts();
    let mut dead: Vec<String> = Vec::new();
    for (id, node) in n.nodes() {
        if fanout[id.index()] > 0 {
            continue;
        }
        match node {
            Node::Input { name: port } => out.push(Diagnostic::warning(
                Layer::Netlist,
                "N005",
                &format!("{name}/{id}"),
                format!("primary input \"{port}\" drives nothing"),
            )),
            Node::Dff { .. } => dead.push(format!("{id} (FF)")),
            g if g.is_gate() => dead.push(id.to_string()),
            _ => {}
        }
    }
    if !dead.is_empty() {
        let shown = dead
            .iter()
            .take(CYCLE_NAME_CAP)
            .cloned()
            .collect::<Vec<_>>()
            .join(", ");
        let more = dead.len().saturating_sub(CYCLE_NAME_CAP);
        let tail = if more > 0 {
            format!(", … {more} more")
        } else {
            String::new()
        };
        out.push(Diagnostic::warning(
            Layer::Netlist,
            "N006",
            &name,
            format!(
                "{} node(s) drive nothing (dead logic): {shown}{tail}",
                dead.len()
            ),
        ));
    }

    out.push(Diagnostic::info(
        Layer::Netlist,
        "N007",
        &name,
        netlist_summary(n).to_string(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use rfjson_core::elaborate::elaborate_filter;
    use rfjson_core::Expr;

    #[test]
    fn elaborated_filter_is_clean() {
        let expr = Expr::context([
            Expr::substring(b"temperature", 1).unwrap(),
            Expr::float_range("0.7", "35.1").unwrap(),
        ]);
        let n = elaborate_filter(&expr, "listing2");
        let diags = verify_netlist(&n);
        assert!(
            diags.iter().all(|d| d.severity < Severity::Error),
            "{diags:?}"
        );
        let summary = netlist_summary(&n);
        assert!(summary.gates > 0 && summary.dffs > 0 && summary.max_fanout > 0);
    }

    #[test]
    fn double_driven_output_is_flagged() {
        let mut n = Netlist::new("dd");
        let a = n.input("a");
        let b = n.input("b");
        n.output("y", a);
        n.output("y", b);
        let diags = verify_netlist(&n);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "N003" && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn unconnected_dff_is_flagged() {
        let mut n = Netlist::new("ff");
        let _ = n.dff_placeholder(false);
        let diags = verify_netlist(&n);
        assert!(diags.iter().any(|d| d.code == "N002"), "{diags:?}");
    }

    #[test]
    fn dead_logic_warnings() {
        let mut n = Netlist::new("dead");
        let a = n.input("a");
        let b = n.input("b");
        let _unused_gate = n.and_gate(a, b);
        let _unused_input = n.input("c");
        let diags = verify_netlist(&n);
        assert!(diags.iter().any(|d| d.code == "N005"), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == "N006"), "{diags:?}");
        assert!(!diags.iter().any(|d| d.severity == Severity::Error));
    }
}

//! Lints the built-in RiotBench queries through all three static
//! verification passes.
//!
//! ```text
//! verify [--verbose] [--telemetry] [--b LIST] [QUERY...]
//! ```
//!
//! * `QUERY…` — query names (`QS0`, `QS1`, `QT`); default: all of them.
//! * `--b LIST` — comma-separated substring block lengths to lint each
//!   query at (default `1,2`, the configurations the paper evaluates).
//! * `--verbose` — also print info-severity diagnostics (automaton sink
//!   structure, netlist statistics).
//! * `--telemetry` — after the passes, print the `verify.*` telemetry
//!   snapshot (lint counts) as JSON.
//!
//! After the per-query passes, every expressible (query, b) expression
//! of the selection is fused into one batch and linted through the
//! `M0xx` multi-program pass (lane invariants against the shared unit
//! pool, independent dedup-census recomputation).
//!
//! Exits with status 1 if any error-severity diagnostic is reported, or
//! 2 on usage errors.

#![forbid(unsafe_code)]

use rfjson_core::query::query_to_exprs;
use rfjson_riotbench::Query;
use rfjson_verify::{multi::verify_batch, verify_query, Severity};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: verify [--verbose] [--telemetry] [--b LIST] [QUERY...]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut verbose = false;
    let mut telemetry = false;
    let mut blocks: Vec<usize> = vec![1, 2];
    let mut queries: Vec<Query> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--verbose" | "-v" => verbose = true,
            "--telemetry" => telemetry = true,
            "--b" => {
                let Some(list) = args.next() else {
                    return usage();
                };
                let parsed: Result<Vec<usize>, _> =
                    list.split(',').map(str::trim).map(str::parse).collect();
                match parsed {
                    Ok(bs) if !bs.is_empty() => blocks = bs,
                    _ => return usage(),
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            name => match Query::by_name(name) {
                Some(q) => queries.push(q),
                None => {
                    eprintln!("unknown query {name:?} (built-ins: QS0, QS1, QT)");
                    return ExitCode::from(2);
                }
            },
        }
    }
    if queries.is_empty() {
        queries = Query::all();
    }

    let min_shown = if verbose {
        Severity::Info
    } else {
        Severity::Warning
    };
    let mut failed = false;
    let mut batch = Vec::new();
    for query in &queries {
        for &b in &blocks {
            if let Ok(expr) = query_to_exprs(query, b) {
                batch.push(expr);
            }
            match verify_query(query, b) {
                Ok(report) => {
                    rfjson_telemetry::counter("verify.queries.linted").incr();
                    let verdict = if report.has_errors() {
                        failed = true;
                        "FAIL"
                    } else {
                        "ok"
                    };
                    println!("{:4} {}", verdict, report.summary());
                    for d in report.at_least(min_shown) {
                        println!("       {d}");
                    }
                }
                Err(e) => {
                    // A block length inapplicable to this query (e.g. a
                    // needle shorter than B) is a skip, not a failure.
                    println!("skip {} (b={b}): {e}", query.name);
                }
            }
        }
    }

    // Fused batch lint: all expressible selections as one multi-query
    // plan through the M0xx pass.
    if !batch.is_empty() {
        let name = format!("fused batch ({} queries)", batch.len());
        match verify_batch(&batch, &name) {
            Ok(report) => {
                rfjson_telemetry::counter("verify.batches.linted").incr();
                let verdict = if report.has_errors() {
                    failed = true;
                    "FAIL"
                } else {
                    "ok"
                };
                println!("{:4} {}", verdict, report.summary());
                for d in report.at_least(min_shown) {
                    println!("       {d}");
                }
            }
            Err(e) => {
                eprintln!("FAIL fused batch failed to compile: {e}");
                failed = true;
            }
        }
    }

    if telemetry {
        let snapshot = rfjson_telemetry::registry()
            .snapshot()
            .filtered(&["verify."]);
        println!("{}", snapshot.to_json());
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

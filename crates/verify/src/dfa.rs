//! DFA verification pass (codes `D0xx`).
//!
//! Operates on the class-compressed [`Dfa`] a primitive compiles to, and
//! on the dense 256-way table the batch engine actually executes from.
//! The two representations are produced independently enough (class
//! indirection vs. flattening, accept bit folded into the state word)
//! that disagreement between them is a real failure mode — the engine
//! would silently diverge from the reference evaluator.
//!
//! ## Diagnostic catalogue
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | D001 | error    | start state out of range |
//! | D002 | error    | transition target out of range |
//! | D003 | warning  | state unreachable from start |
//! | D004 | warning  | dead state that is not a plain reject sink (non-minimal) |
//! | D005 | info     | reject sink present (expected for bounded-range automata) |
//! | D006 | info     | accept sink present (once-matched-always-matched latch) |
//! | D007 | warning  | empty language: no reachable accepting state |
//! | D010 | error    | dense table length is not `num_states * 256` |
//! | D011 | error    | dense successor disagrees with sparse `step` |
//! | D012 | error    | dense accept bit disagrees with `is_accept` |
//! | D013 | error    | dense start word disagrees with sparse start |

use crate::{Diagnostic, Layer};
use rfjson_redfa::{Dfa, DENSE_ACCEPT_BIT};

/// How many individual mismatch diagnostics to emit per dense table
/// before collapsing the remainder into one summary diagnostic.
const MISMATCH_CAP: usize = 5;

/// Forward reachability from the start state over class transitions.
fn reachable(dfa: &Dfa) -> Vec<bool> {
    let n = dfa.num_states();
    let mut seen = vec![false; n];
    let start = dfa.start() as usize;
    if start >= n {
        return seen;
    }
    let mut stack = vec![dfa.start()];
    seen[start] = true;
    while let Some(s) = stack.pop() {
        for c in 0..dfa.num_classes() {
            let t = dfa.step_class(s, c as u8);
            if (t as usize) < n && !seen[t as usize] {
                seen[t as usize] = true;
                stack.push(t);
            }
        }
    }
    seen
}

/// States from which some accepting state is reachable (reverse BFS).
fn can_accept(dfa: &Dfa) -> Vec<bool> {
    let n = dfa.num_states();
    // Reverse adjacency over class transitions.
    let mut preds: Vec<Vec<u16>> = vec![Vec::new(); n];
    for s in 0..n as u16 {
        for c in 0..dfa.num_classes() {
            let t = dfa.step_class(s, c as u8) as usize;
            if t < n {
                preds[t].push(s);
            }
        }
    }
    let mut live = vec![false; n];
    let mut stack: Vec<u16> = (0..n as u16).filter(|&s| dfa.is_accept(s)).collect();
    for &s in &stack {
        live[s as usize] = true;
    }
    while let Some(s) = stack.pop() {
        for &p in &preds[s as usize] {
            if !live[p as usize] {
                live[p as usize] = true;
                stack.push(p);
            }
        }
    }
    live
}

/// Is `s` a sink (every transition loops back to `s`)?
fn is_sink(dfa: &Dfa, s: u16) -> bool {
    (0..dfa.num_classes()).all(|c| dfa.step_class(s, c as u8) == s)
}

/// Verifies the sparse (class-compressed) automaton: in-range
/// transitions, reachability, dead states and sink structure.
pub fn verify_dfa(dfa: &Dfa, location: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = dfa.num_states();

    if dfa.start() as usize >= n {
        out.push(Diagnostic::error(
            Layer::Dfa,
            "D001",
            location,
            format!("start state {} out of range (num_states {n})", dfa.start()),
        ));
        return out; // Everything downstream assumes a valid start.
    }
    for s in 0..n as u16 {
        for c in 0..dfa.num_classes() {
            let t = dfa.step_class(s, c as u8);
            if t as usize >= n {
                out.push(Diagnostic::error(
                    Layer::Dfa,
                    "D002",
                    location,
                    format!("state {s} class {c}: target {t} out of range (num_states {n})"),
                ));
            }
        }
    }
    if !out.is_empty() {
        return out; // Reachability on a broken graph is meaningless.
    }

    let seen = reachable(dfa);
    for (s, ok) in seen.iter().enumerate() {
        if !ok {
            out.push(Diagnostic::warning(
                Layer::Dfa,
                "D003",
                location,
                format!("state {s} unreachable from start"),
            ));
        }
    }

    let live = can_accept(dfa);
    let mut any_accept_reachable = false;
    for s in 0..n as u16 {
        if !seen[s as usize] {
            continue;
        }
        if dfa.is_accept(s) {
            any_accept_reachable = true;
            if is_sink(dfa, s) {
                out.push(Diagnostic::info(
                    Layer::Dfa,
                    "D006",
                    location,
                    format!("state {s} is an accept sink (match latches)"),
                ));
            }
        } else if !live[s as usize] {
            if is_sink(dfa, s) {
                out.push(Diagnostic::info(
                    Layer::Dfa,
                    "D005",
                    location,
                    format!("state {s} is a reject sink"),
                ));
            } else {
                out.push(Diagnostic::warning(
                    Layer::Dfa,
                    "D004",
                    location,
                    format!("state {s} is dead but not a sink (automaton not minimal)"),
                ));
            }
        }
    }
    if !any_accept_reachable {
        out.push(Diagnostic::warning(
            Layer::Dfa,
            "D007",
            location,
            "no reachable accepting state: the primitive can never fire".to_string(),
        ));
    }
    out
}

/// Verifies a dense execution table against the sparse automaton it was
/// flattened from: length, every successor, every accept bit, and the
/// encoded start word.
pub fn verify_dense_table(dfa: &Dfa, table: &[u16], start: u16, location: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = dfa.num_states();
    let expected_len = n * 256;
    if table.len() != expected_len {
        out.push(Diagnostic::error(
            Layer::Dfa,
            "D010",
            location,
            format!(
                "dense table has {} entries, {n} states need {expected_len}",
                table.len()
            ),
        ));
        return out;
    }

    let mut mismatches = 0usize;
    for s in 0..n as u16 {
        for b in 0..=255u8 {
            let word = table[s as usize * 256 + b as usize];
            let dense_next = word & !DENSE_ACCEPT_BIT;
            let dense_accept = word & DENSE_ACCEPT_BIT != 0;
            let sparse_next = dfa.step(s, b);
            if dense_next != sparse_next {
                mismatches += 1;
                if mismatches <= MISMATCH_CAP {
                    out.push(Diagnostic::error(
                        Layer::Dfa,
                        "D011",
                        location,
                        format!(
                            "state {s} byte 0x{b:02x}: dense successor {dense_next}, \
                             sparse step gives {sparse_next}"
                        ),
                    ));
                }
            } else if dense_accept != dfa.is_accept(dense_next) {
                mismatches += 1;
                if mismatches <= MISMATCH_CAP {
                    out.push(Diagnostic::error(
                        Layer::Dfa,
                        "D012",
                        location,
                        format!(
                            "state {s} byte 0x{b:02x}: accept bit {dense_accept} but \
                             successor {dense_next} is_accept={}",
                            dfa.is_accept(dense_next)
                        ),
                    ));
                }
            }
        }
    }
    if mismatches > MISMATCH_CAP {
        out.push(Diagnostic::error(
            Layer::Dfa,
            "D011",
            location,
            format!(
                "… and {} more dense/sparse mismatches",
                mismatches - MISMATCH_CAP
            ),
        ));
    }

    let start_state = start & !DENSE_ACCEPT_BIT;
    let start_accept = start & DENSE_ACCEPT_BIT != 0;
    if start_state != dfa.start() || start_accept != dfa.is_accept(dfa.start()) {
        out.push(Diagnostic::error(
            Layer::Dfa,
            "D013",
            location,
            format!(
                "dense start word 0x{start:04x} disagrees with sparse start {} \
                 (accept {})",
                dfa.start(),
                dfa.is_accept(dfa.start())
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use rfjson_core::primitive::DfaStringMatcher;
    use rfjson_redfa::NumberBounds;

    #[test]
    fn string_dfa_is_clean() {
        let m = DfaStringMatcher::new(b"dust");
        // `.*dust` is minimal and complete: every state reachable, every
        // state can still reach accept (latching happens in the engine
        // unit, not the automaton), so the pass is silent.
        let diags = verify_dfa(m.dfa(), "dfa(\"dust\")");
        assert!(diags.is_empty(), "{diags:?}");
        let dense = verify_dense_table(
            m.dfa(),
            &m.dfa().dense_table(),
            m.dfa().dense_start(),
            "dfa(\"dust\")",
        );
        assert!(dense.is_empty(), "{dense:?}");
    }

    #[test]
    fn number_dfa_has_accept_sink() {
        // The range automaton latches once the token is provably in
        // range: an accept sink, reported as info.
        let d = NumberBounds::int_range(12, 49).to_dfa();
        let diags = verify_dfa(&d, "v(12 ≤ i ≤ 49)");
        assert!(
            diags.iter().all(|d| d.severity < Severity::Warning),
            "{diags:?}"
        );
        assert!(diags.iter().any(|d| d.code == "D006"), "{diags:?}");
    }

    #[test]
    fn redirected_edge_is_flagged() {
        let m = DfaStringMatcher::new(b"dust");
        let dfa = m.dfa();
        let mut table = dfa.dense_table();
        // Redirect one transition to a different (valid, correctly
        // accept-flagged) state: only D011 can catch this.
        let idx = 256 + usize::from(b'x');
        let old = table[idx] & !DENSE_ACCEPT_BIT;
        let new = (old + 1) % dfa.num_states() as u16;
        let flag = if dfa.is_accept(new) {
            DENSE_ACCEPT_BIT
        } else {
            0
        };
        table[idx] = new | flag;
        let diags = verify_dense_table(dfa, &table, dfa.dense_start(), "mutated");
        assert!(diags
            .iter()
            .any(|d| d.code == "D011" && d.severity == Severity::Error));
    }

    #[test]
    fn flipped_accept_bit_is_flagged() {
        let m = DfaStringMatcher::new(b"ab");
        let dfa = m.dfa();
        let mut table = dfa.dense_table();
        table[usize::from(b'a')] ^= DENSE_ACCEPT_BIT;
        let diags = verify_dense_table(dfa, &table, dfa.dense_start(), "mutated");
        assert!(diags.iter().any(|d| d.code == "D012"));
    }

    #[test]
    fn truncated_table_and_bad_start() {
        let m = DfaStringMatcher::new(b"ab");
        let dfa = m.dfa();
        let table = dfa.dense_table();
        let diags = verify_dense_table(dfa, &table[..table.len() - 1], dfa.dense_start(), "t");
        assert!(diags.iter().any(|d| d.code == "D010"));
        let diags = verify_dense_table(dfa, &table, dfa.dense_start() ^ 1, "t");
        assert!(diags.iter().any(|d| d.code == "D013"));
    }
}

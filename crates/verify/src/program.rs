//! Flat-program verification pass (codes `P0xx`).
//!
//! The batch [`Engine`] executes a post-order node program: primitive
//! units latch leaf bits, combinator ops fold them bottom-up, and
//! structural contexts clear exactly their strict-descendant latches at
//! instance boundaries. [`ProgramView::check`] (in `rfjson-core`, so the
//! compiler itself can `debug_assert!` it) re-proves the structural
//! invariants; this module maps those faults into the shared diagnostic
//! model and adds the cross-layer checks only an outside observer can
//! make — that the dense tables *stored inside the engine* are the same
//! tables a fresh derivation from the source expression produces.
//!
//! ## Diagnostic catalogue
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | P001 | error    | latch bitset width inconsistent with node count |
//! | P002 | error    | root is not the final node |
//! | P003 | error    | mask offset out of range |
//! | P004 | error    | mask bit exceeds node count |
//! | P005 | error    | ops not in post-order |
//! | P006 | error    | node defined twice |
//! | P007 | error    | operand used before defined |
//! | P008 | warning  | node feeds no parent (dead logic) |
//! | P009 | error    | node feeds two parents (program must be a tree) |
//! | P010 | error    | context clear mask misses/overshoots its descendants |
//! | P011 | error    | context flag-level slots out of range or unordered |
//! | P020 | error    | unit censuses disagree with the source expression |
//! | P021 | error    | stored dense table offset out of range |
//! | P022 | error    | stored dense table or start disagrees with fresh derivation |

use crate::{Diagnostic, Layer};
use rfjson_core::engine::{DfaUnitView, ProgramFault, ProgramView};
use rfjson_core::expr::{Expr, StringTechnique};
use rfjson_core::primitive::DfaStringMatcher;
use rfjson_core::Engine;
use rfjson_redfa::Dfa;

/// Maps one [`ProgramFault`] to its diagnostic.
fn fault_diag(fault: &ProgramFault) -> Diagnostic {
    let (code, loc) = match fault {
        ProgramFault::WordWidth { .. } => ("P001", "program".to_string()),
        ProgramFault::BadRoot { root } => ("P002", format!("node {root}")),
        ProgramFault::MaskOutOfRange { node, .. } => ("P003", format!("node {node}")),
        ProgramFault::MaskBitOutOfRange { node, .. } => ("P004", format!("node {node}")),
        ProgramFault::NotPostOrder { node } => ("P005", format!("node {node}")),
        ProgramFault::DoubleDefinition { node } => ("P006", format!("node {node}")),
        ProgramFault::UseBeforeDef { node, .. } => ("P007", format!("node {node}")),
        ProgramFault::DanglingNode { node } => ("P008", format!("node {node}")),
        ProgramFault::SharedOperand { node } => ("P009", format!("node {node}")),
        ProgramFault::LatchClearMismatch { node, .. } => ("P010", format!("node {node}")),
        ProgramFault::BadCtxSlots { node } => ("P011", format!("node {node}")),
    };
    if code == "P008" {
        Diagnostic::warning(Layer::Program, code, &loc, fault.to_string())
    } else {
        Diagnostic::error(Layer::Program, code, &loc, fault.to_string())
    }
}

/// Verifies a program snapshot's structural invariants (the
/// [`ProgramView::check`] faults, as diagnostics).
pub fn verify_program(view: &ProgramView) -> Vec<Diagnostic> {
    view.check().iter().map(fault_diag).collect()
}

/// The automata a fresh derivation from the expression yields, in the
/// compiler's deterministic visit order.
#[derive(Default)]
pub(crate) struct ExpectedUnits {
    pub(crate) string_dfas: Vec<Dfa>,
    pub(crate) number_dfas: Vec<Dfa>,
    pub(crate) sub1: usize,
    pub(crate) subp: usize,
    pub(crate) wide: usize,
}

pub(crate) fn collect_expected(expr: &Expr, exp: &mut ExpectedUnits) {
    match expr {
        Expr::Str(spec) => match spec.technique {
            StringTechnique::Dfa | StringTechnique::Window => {
                let m = DfaStringMatcher::new(&spec.needle);
                exp.string_dfas.push(m.dfa().clone());
            }
            StringTechnique::Substring(b) => {
                if b == 1 {
                    exp.sub1 += 1;
                } else if b <= 8 {
                    exp.subp += 1;
                } else {
                    exp.wide += 1;
                }
            }
        },
        Expr::Num(bounds) => exp.number_dfas.push(bounds.to_dfa()),
        Expr::And(cs) | Expr::Or(cs) | Expr::Ctx(cs, _) => {
            for c in cs {
                collect_expected(c, exp);
            }
        }
    }
}

/// Cross-checks one stored unit against its freshly derived automaton.
pub(crate) fn check_unit(
    kind: &str,
    i: usize,
    unit: &DfaUnitView,
    fresh: &Dfa,
    tables: &[u16],
    out: &mut Vec<Diagnostic>,
) {
    let loc = format!("{kind} unit {i} (node {})", unit.node);
    let len = fresh.num_states() * 256;
    let off = unit.table_off as usize;
    if off + len > tables.len() {
        out.push(Diagnostic::error(
            Layer::Program,
            "P021",
            &loc,
            format!(
                "table offset {off}+{len} exceeds pool of {} entries",
                tables.len()
            ),
        ));
        return;
    }
    if tables[off..off + len] != fresh.dense_table()[..] {
        out.push(Diagnostic::error(
            Layer::Program,
            "P022",
            &loc,
            "stored dense table disagrees with fresh derivation from the expression".to_string(),
        ));
    }
    if unit.start != fresh.dense_start() {
        out.push(Diagnostic::error(
            Layer::Program,
            "P022",
            &loc,
            format!(
                "stored start word 0x{:04x} disagrees with derived 0x{:04x}",
                unit.start,
                fresh.dense_start()
            ),
        ));
    }
}

/// Verifies a compiled engine: structural program invariants plus the
/// cross-layer agreement of its stored dense tables with automata
/// freshly derived from [`Engine::expr`].
pub fn verify_engine(engine: &Engine) -> Vec<Diagnostic> {
    let view = engine.program_view();
    let mut out = verify_program(&view);

    let mut exp = ExpectedUnits::default();
    collect_expected(engine.expr(), &mut exp);

    let censuses = [
        ("string-dfa", view.string_dfas.len(), exp.string_dfas.len()),
        ("number-dfa", view.number_dfas.len(), exp.number_dfas.len()),
        ("substring-b1", view.sub1_nodes.len(), exp.sub1),
        ("substring-packed", view.subp_nodes.len(), exp.subp),
        ("substring-wide", view.wide_nodes.len(), exp.wide),
    ];
    for (kind, got, want) in censuses {
        if got != want {
            out.push(Diagnostic::error(
                Layer::Program,
                "P020",
                "program",
                format!("{kind} unit count {got}, expression has {want}"),
            ));
        }
    }

    for (i, (unit, fresh)) in view.string_dfas.iter().zip(&exp.string_dfas).enumerate() {
        check_unit("string-dfa", i, unit, fresh, &view.tables, &mut out);
    }
    for (i, (unit, fresh)) in view.number_dfas.iter().zip(&exp.number_dfas).enumerate() {
        check_unit("number-dfa", i, unit, fresh, &view.tables, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn sample_engine() -> Engine {
        let expr = Expr::and([
            Expr::context([
                Expr::substring(b"temperature", 1).unwrap(),
                Expr::float_range("0.7", "35.1").unwrap(),
            ]),
            Expr::dfa_string(b"dust").unwrap(),
            Expr::int_range(12, 49),
        ]);
        Engine::compile(&expr)
    }

    #[test]
    fn compiled_engine_is_clean() {
        let diags = verify_engine(&sample_engine());
        assert!(
            diags.iter().all(|d| d.severity < Severity::Warning),
            "{diags:?}"
        );
    }

    #[test]
    fn dropped_latch_reset_is_flagged() {
        let engine = sample_engine();
        let mut view = engine.program_view();
        // Find the context op and knock one descendant out of its clear
        // mask — the latch would never reset at instance end.
        let ctx = view
            .ops
            .iter()
            .find_map(|op| match op.kind {
                rfjson_core::engine::OpKindView::Ctx { clear_off, .. } => {
                    Some((op.node, clear_off))
                }
                _ => None,
            })
            .expect("sample has a context");
        let (node, clear_off) = ctx;
        let first_desc = (node - 2) as usize; // a strict descendant bit
        view.masks[clear_off as usize + first_desc / 64] &= !(1u64 << (first_desc % 64));
        let diags = verify_program(&view);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "P010" && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn corrupted_stored_table_is_flagged() {
        let engine = sample_engine();
        // verify_engine recomputes from the expression; corrupting the
        // snapshot's table must be caught by the cross-layer check. The
        // snapshot is a clone, so mutate and re-run the unit check
        // directly.
        let mut view = engine.program_view();
        let unit = view.string_dfas[0];
        view.tables[unit.table_off as usize + 7] ^= 1;
        let mut exp = ExpectedUnits::default();
        collect_expected(engine.expr(), &mut exp);
        let mut out = Vec::new();
        check_unit(
            "string-dfa",
            0,
            &unit,
            &exp.string_dfas[0],
            &view.tables,
            &mut out,
        );
        assert!(out.iter().any(|d| d.code == "P022"), "{out:?}");
    }
}

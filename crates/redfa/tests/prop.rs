//! Property tests for the regex/DFA pipeline: NFA/DFA/minimised agreement
//! on random regexes, automata algebra laws, range-automaton exactness
//! and the elaborated hardware form.

use proptest::prelude::*;
use rfjson_redfa::nfa::Nfa;
use rfjson_redfa::range::{ge_int_regex, le_int_regex, NumberBounds};
use rfjson_redfa::regex::Regex;
use rfjson_redfa::{Decimal, Dfa};

/// Strategy producing small random regex ASTs over the alphabet {a,b,c}.
fn regex_strategy() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::byte(b'a')),
        Just(Regex::byte(b'b')),
        Just(Regex::byte(b'c')),
        Just(Regex::range(b'a', b'b')),
        Just(Regex::Eps),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::star),
            inner.clone().prop_map(Regex::plus),
            inner.prop_map(Regex::opt),
        ]
    })
}

proptest! {
    #[test]
    fn nfa_dfa_minimized_agree(
        re in regex_strategy(),
        inputs in prop::collection::vec("[a-d]{0,8}", 1..12),
    ) {
        let nfa = Nfa::from_regex(&re);
        let dfa = Dfa::from_regex(&re);
        let min = dfa.minimized();
        prop_assert!(min.num_states() <= dfa.num_states());
        for input in &inputs {
            let b = input.as_bytes();
            let n = nfa.accepts(b);
            prop_assert_eq!(dfa.accepts(b), n, "dfa vs nfa on {:?}", input);
            prop_assert_eq!(min.accepts(b), n, "min vs nfa on {:?}", input);
        }
    }

    #[test]
    fn minimization_is_idempotent(re in regex_strategy()) {
        let min = Dfa::from_regex(&re).minimized();
        let min2 = min.minimized();
        prop_assert_eq!(min.num_states(), min2.num_states());
    }

    #[test]
    fn product_algebra_laws(
        ra in regex_strategy(),
        rb in regex_strategy(),
        inputs in prop::collection::vec("[a-c]{0,6}", 1..10),
    ) {
        let a = Dfa::from_regex(&ra);
        let b = Dfa::from_regex(&rb);
        let inter = a.intersect(&b);
        let union = a.union(&b);
        let comp_a = a.complement();
        for input in &inputs {
            let bytes = input.as_bytes();
            let (va, vb) = (a.accepts(bytes), b.accepts(bytes));
            prop_assert_eq!(inter.accepts(bytes), va && vb);
            prop_assert_eq!(union.accepts(bytes), va || vb);
            prop_assert_eq!(comp_a.accepts(bytes), !va);
        }
    }

    #[test]
    fn fig2_bounds_regexes_are_exact(
        bound in 0i64..100_000,
        probe in 0i64..200_000,
    ) {
        let d = Decimal::from_int(bound);
        let ge = Dfa::from_regex(&ge_int_regex(&d));
        let le = Dfa::from_regex(&le_int_regex(&d));
        let token = probe.to_string();
        prop_assert_eq!(ge.accepts(token.as_bytes()), probe >= bound);
        prop_assert_eq!(le.accepts(token.as_bytes()), probe <= bound);
    }

    #[test]
    fn range_single_automaton_equals_bound_intersection(
        lo in 0i64..5000,
        span in 0i64..5000,
        probe in 0i64..15_000,
    ) {
        let hi = lo + span;
        let range = NumberBounds::int_range(lo, hi).to_dfa_exact();
        let ge = Dfa::from_regex(&ge_int_regex(&Decimal::from_int(lo)));
        let le = Dfa::from_regex(&le_int_regex(&Decimal::from_int(hi)));
        let both = ge.intersect(&le).minimized();
        let token = probe.to_string();
        prop_assert_eq!(
            range.accepts(token.as_bytes()),
            both.accepts(token.as_bytes()),
            "probe {} vs [{}, {}]", probe, lo, hi
        );
        // And the single automaton is no larger (the §III-B claim).
        prop_assert!(range.num_states() <= ge.num_states() + le.num_states());
    }

    #[test]
    fn widening_is_superset(
        lo_h in -5000i64..5000,
        span_h in 0i64..8000,
        digits in 1usize..4,
        probe_h in -10_000i64..10_000,
    ) {
        let fmt = |h: i64| {
            let sign = if h < 0 { "-" } else { "" };
            let a = h.abs();
            if a % 100 == 0 { format!("{sign}{}", a / 100) }
            else if a % 10 == 0 { format!("{sign}{}.{}", a / 100, (a / 10) % 10) }
            else { format!("{sign}{}.{:02}", a / 100, a % 100) }
        };
        let bounds = NumberBounds::new(
            fmt(lo_h).parse::<Decimal>().unwrap(),
            fmt(lo_h + span_h).parse::<Decimal>().unwrap(),
            rfjson_redfa::range::NumberKind::Float,
        ).unwrap();
        let widened = bounds.widened_to_digits(digits);
        let exact = bounds.to_dfa_exact();
        let wide = widened.to_dfa_exact();
        let token = fmt(probe_h);
        // Anything the exact range accepts, the widened range must too.
        if exact.accepts(token.as_bytes()) {
            prop_assert!(wide.accepts(token.as_bytes()), "{} lost from {}", token, widened);
        }
    }

    #[test]
    fn hardware_dfa_equals_software(
        re in regex_strategy(),
        input in "[a-c]{0,10}",
    ) {
        use rfjson_redfa::elaborate::dfa_to_netlist;
        use rfjson_rtl::{BitVec, Simulator};
        let dfa = Dfa::from_regex(&re).minimized();
        // Cap hardware size for test speed.
        prop_assume!(dfa.num_states() <= 24);
        let n = dfa_to_netlist(&dfa, "dut");
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input("advance", true).unwrap();
        sim.set_input("reset", false).unwrap();
        for &b in input.as_bytes() {
            sim.set_input_word("byte", &BitVec::from_u64(u64::from(b), 8)).unwrap();
            sim.clock();
        }
        prop_assert_eq!(sim.output("accept").unwrap(), dfa.accepts(input.as_bytes()));
    }
}

//! Regular expression AST, parser and pretty-printer.
//!
//! Expressions operate on **bytes**; character classes are
//! [`ByteSet`]s. The AST is the input to Thompson construction
//! ([`crate::nfa`]) and the output of the paper's range derivation
//! ([`crate::range`]).

use rfjson_rtl::components::ByteSet;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A regular expression over bytes.
///
/// # Example
///
/// ```
/// use rfjson_redfa::Regex;
///
/// let re: Regex = "[1-9][0-9]*".parse()?;
/// let dfa = rfjson_redfa::Dfa::from_regex(&re);
/// assert!(dfa.accepts(b"35"));
/// assert!(!dfa.accepts(b"035"));
/// # Ok::<(), rfjson_redfa::regex::ParseRegexError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// Matches nothing (the empty language).
    Empty,
    /// Matches the empty string.
    Eps,
    /// Matches one byte from the set.
    Class(ByteSet),
    /// Concatenation, in order.
    Concat(Vec<Regex>),
    /// Alternation.
    Alt(Vec<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
    /// One or more.
    Plus(Box<Regex>),
    /// Zero or one.
    Opt(Box<Regex>),
}

impl Regex {
    /// Literal byte string.
    pub fn literal(s: &[u8]) -> Regex {
        let parts: Vec<Regex> = s
            .iter()
            .map(|&b| Regex::Class(ByteSet::from_byte(b)))
            .collect();
        match parts.len() {
            0 => Regex::Eps,
            1 => parts.into_iter().next().expect("len checked"),
            _ => Regex::Concat(parts),
        }
    }

    /// Single byte.
    pub fn byte(b: u8) -> Regex {
        Regex::Class(ByteSet::from_byte(b))
    }

    /// Byte range class `lo..=hi`.
    pub fn range(lo: u8, hi: u8) -> Regex {
        Regex::Class(ByteSet::from_range(lo, hi))
    }

    /// The digit class `[0-9]`.
    pub fn digit() -> Regex {
        Regex::range(b'0', b'9')
    }

    /// Concatenation smart constructor (flattens, drops `Eps`, absorbs
    /// `Empty`).
    pub fn concat(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Regex::Eps => {}
                Regex::Empty => return Regex::Empty,
                Regex::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Eps,
            1 => out.into_iter().next().expect("len checked"),
            _ => Regex::Concat(out),
        }
    }

    /// Alternation smart constructor (flattens, drops `Empty`).
    pub fn alt(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Alt(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Empty,
            1 => out.into_iter().next().expect("len checked"),
            _ => Regex::Alt(out),
        }
    }

    /// Kleene star smart constructor.
    pub fn star(self) -> Regex {
        match self {
            Regex::Empty | Regex::Eps => Regex::Eps,
            Regex::Star(inner) => Regex::Star(inner),
            other => Regex::Star(Box::new(other)),
        }
    }

    /// One-or-more smart constructor.
    pub fn plus(self) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Eps => Regex::Eps,
            other => Regex::Plus(Box::new(other)),
        }
    }

    /// Zero-or-one smart constructor.
    pub fn opt(self) -> Regex {
        match self {
            Regex::Empty | Regex::Eps => Regex::Eps,
            other => Regex::Opt(Box::new(other)),
        }
    }

    /// `self{n}` — exactly `n` copies.
    pub fn repeat(self, n: usize) -> Regex {
        Regex::concat(std::iter::repeat_n(self, n))
    }

    /// `self{n,}` — `n` or more copies.
    pub fn at_least(self, n: usize) -> Regex {
        let star = self.clone().star();
        Regex::concat(std::iter::repeat_n(self, n).chain(std::iter::once(star)))
    }

    /// Does the language contain the empty string? (Needed by tests and by
    /// the number-filter semantics: an empty token never matches.)
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Class(_) => false,
            Regex::Eps | Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Concat(ps) => ps.iter().all(Regex::nullable),
            Regex::Alt(ps) => ps.iter().any(Regex::nullable),
            Regex::Plus(p) => p.nullable(),
        }
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_regex(self, f, 0)
    }
}

/// Precedence levels: 0 = alt, 1 = concat, 2 = postfix.
fn fmt_regex(re: &Regex, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    match re {
        Regex::Empty => write!(f, "∅"),
        Regex::Eps => write!(f, "ε"),
        Regex::Class(set) => fmt_class(set, f),
        Regex::Concat(ps) => {
            if prec > 1 {
                write!(f, "(")?;
            }
            for p in ps {
                fmt_regex(p, f, 2)?;
            }
            if prec > 1 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Regex::Alt(ps) => {
            if prec > 0 {
                write!(f, "(")?;
            }
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    write!(f, "|")?;
                }
                fmt_regex(p, f, 1)?;
            }
            if prec > 0 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Regex::Star(p) => {
            fmt_regex(p, f, 2)?;
            write!(f, "*")
        }
        Regex::Plus(p) => {
            fmt_regex(p, f, 2)?;
            write!(f, "+")
        }
        Regex::Opt(p) => {
            fmt_regex(p, f, 2)?;
            write!(f, "?")
        }
    }
}

fn fmt_class(set: &ByteSet, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    fn show(b: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if b.is_ascii_graphic() && !br"[]-\^".contains(&b) {
            write!(f, "{}", b as char)
        } else {
            write!(f, "\\x{b:02x}")
        }
    }
    if set.len() == 256 {
        return write!(f, ".");
    }
    let ranges = set.ranges();
    if ranges.len() == 1 && ranges[0].0 == ranges[0].1 {
        let b = ranges[0].0;
        if b.is_ascii_graphic() && !br"()[]{}|*+?.\^$-".contains(&b) {
            return write!(f, "{}", b as char);
        }
        if b == b' ' {
            return write!(f, " ");
        }
        return write!(f, "\\x{b:02x}");
    }
    write!(f, "[")?;
    for (lo, hi) in ranges {
        show(lo, f)?;
        if hi > lo {
            if hi > lo + 1 {
                write!(f, "-")?;
            }
            show(hi, f)?;
        }
    }
    write!(f, "]")
}

/// Error produced when parsing a textual regex fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegexError {
    /// Byte offset of the error in the pattern.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseRegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl Error for ParseRegexError {}

impl FromStr for Regex {
    type Err = ParseRegexError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Parser::new(s.as_bytes()).parse()
    }
}

/// Recursive-descent parser for a conventional regex subset:
/// literals, `\` escapes, `.`, `[a-z]` / `[^a-z]` classes, `(…)`, `|`,
/// `*`, `+`, `?`, `{m}`, `{m,}`, `{m,n}`.
struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a [u8]) -> Self {
        Parser { src, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> ParseRegexError {
        ParseRegexError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn parse(mut self) -> Result<Regex, ParseRegexError> {
        let re = self.parse_alt()?;
        if self.pos != self.src.len() {
            return Err(self.err("unexpected `)`"));
        }
        Ok(re)
    }

    fn parse_alt(&mut self) -> Result<Regex, ParseRegexError> {
        let mut parts = vec![self.parse_concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            parts.push(self.parse_concat()?);
        }
        Ok(Regex::alt(parts))
    }

    fn parse_concat(&mut self) -> Result<Regex, ParseRegexError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.parse_postfix()?);
        }
        Ok(Regex::concat(parts))
    }

    fn parse_postfix(&mut self) -> Result<Regex, ParseRegexError> {
        let mut atom = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    atom = atom.star();
                }
                Some(b'+') => {
                    self.bump();
                    atom = atom.plus();
                }
                Some(b'?') => {
                    self.bump();
                    atom = atom.opt();
                }
                Some(b'{') => {
                    self.bump();
                    atom = self.parse_repeat(atom)?;
                }
                _ => return Ok(atom),
            }
        }
    }

    fn parse_repeat(&mut self, atom: Regex) -> Result<Regex, ParseRegexError> {
        let m = self.parse_number()?;
        match self.bump() {
            Some(b'}') => Ok(atom.repeat(m)),
            Some(b',') => {
                if self.peek() == Some(b'}') {
                    self.bump();
                    return Ok(atom.at_least(m));
                }
                let n = self.parse_number()?;
                if self.bump() != Some(b'}') {
                    return Err(self.err("expected `}`"));
                }
                if n < m {
                    return Err(self.err(format!("bad repetition {{{m},{n}}}")));
                }
                // r{m,n} = r^m (r?)^(n-m)
                let opts = Regex::concat(std::iter::repeat_n(atom.clone().opt(), n - m));
                Ok(Regex::concat([atom.repeat(m), opts]))
            }
            _ => Err(self.err("expected `}` or `,`")),
        }
    }

    fn parse_number(&mut self) -> Result<usize, ParseRegexError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .expect("digits are utf8")
            .parse()
            .map_err(|_| self.err("repetition count too large"))
    }

    fn parse_atom(&mut self) -> Result<Regex, ParseRegexError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some(b'(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(b')') {
                    return Err(self.err("unclosed `(`"));
                }
                Ok(inner)
            }
            Some(b'[') => self.parse_class(),
            Some(b'.') => Ok(Regex::Class(ByteSet::full())),
            Some(b'\\') => {
                let b = self.bump().ok_or_else(|| self.err("dangling escape"))?;
                Ok(Regex::byte(unescape(b)))
            }
            Some(b) if b"*+?{}|)".contains(&b) => {
                Err(self.err(format!("unexpected `{}`", b as char)))
            }
            Some(b) => Ok(Regex::byte(b)),
        }
    }

    fn parse_class(&mut self) -> Result<Regex, ParseRegexError> {
        let negate = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut set = ByteSet::new();
        loop {
            let b = match self.bump() {
                None => return Err(self.err("unclosed `[`")),
                Some(b']') => break,
                Some(b'\\') => {
                    let e = self.bump().ok_or_else(|| self.err("dangling escape"))?;
                    unescape(e)
                }
                Some(b) => b,
            };
            // Range `b-hi` unless `-` is last before `]`.
            if self.peek() == Some(b'-') && self.src.get(self.pos + 1) != Some(&b']') {
                self.bump();
                let hi = match self.bump() {
                    None => return Err(self.err("unclosed `[`")),
                    Some(b'\\') => {
                        let e = self.bump().ok_or_else(|| self.err("dangling escape"))?;
                        unescape(e)
                    }
                    Some(h) => h,
                };
                if hi < b {
                    return Err(self.err("inverted class range"));
                }
                for v in b..=hi {
                    set.insert(v);
                }
            } else {
                set.insert(b);
            }
        }
        if negate {
            set = set.complement();
        }
        if set.is_empty() {
            return Err(self.err("empty character class"));
        }
        Ok(Regex::Class(set))
    }
}

fn unescape(b: u8) -> u8 {
    match b {
        b'n' => b'\n',
        b'r' => b'\r',
        b't' => b'\t',
        b'0' => 0,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::Dfa;

    fn accepts(pattern: &str, input: &[u8]) -> bool {
        let re: Regex = pattern.parse().expect("pattern parses");
        Dfa::from_regex(&re).accepts(input)
    }

    #[test]
    fn literal_and_alternation() {
        assert!(accepts("abc", b"abc"));
        assert!(!accepts("abc", b"ab"));
        assert!(!accepts("abc", b"abcd"));
        assert!(accepts("cat|dog", b"dog"));
        assert!(!accepts("cat|dog", b"cow"));
    }

    #[test]
    fn postfix_operators() {
        assert!(accepts("ab*c", b"ac"));
        assert!(accepts("ab*c", b"abbbc"));
        assert!(accepts("ab+c", b"abc"));
        assert!(!accepts("ab+c", b"ac"));
        assert!(accepts("ab?c", b"ac"));
        assert!(accepts("ab?c", b"abc"));
        assert!(!accepts("ab?c", b"abbc"));
    }

    #[test]
    fn repetitions() {
        assert!(accepts("a{3}", b"aaa"));
        assert!(!accepts("a{3}", b"aa"));
        assert!(accepts("a{2,}", b"aaaa"));
        assert!(!accepts("a{2,}", b"a"));
        assert!(accepts("a{1,3}", b"aa"));
        assert!(!accepts("a{1,3}", b"aaaa"));
    }

    #[test]
    fn classes() {
        assert!(accepts("[0-9]+", b"12345"));
        assert!(!accepts("[0-9]+", b"12a45"));
        assert!(accepts("[^0-9]", b"x"));
        assert!(!accepts("[^0-9]", b"7"));
        assert!(accepts("[a-cx]", b"x"));
        assert!(accepts("[-a]", b"-"), "literal dash at class end");
        assert!(accepts(r"[\]]", b"]"));
    }

    #[test]
    fn dot_and_escapes() {
        assert!(accepts("a.c", b"axc"));
        assert!(accepts(r"a\.c", b"a.c"));
        assert!(!accepts(r"a\.c", b"axc"));
        assert!(accepts(r"\n", b"\n"));
    }

    #[test]
    fn the_paper_fig2_regex_textual() {
        // (3[5-9] | [4-9][0-9] | [1-9][0-9]{2,}) — i ≥ 35, Fig. 2 step 1.3
        let p = "(3[5-9])|([4-9][0-9])|([1-9][0-9]{2,})";
        for (input, want) in [
            (&b"35"[..], true),
            (b"39", true),
            (b"40", true),
            (b"99", true),
            (b"100", true),
            (b"34", false),
            (b"9", false),
            (b"04", false),
        ] {
            assert_eq!(accepts(p, input), want, "input {input:?}");
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!("(".parse::<Regex>().is_err());
        assert!(")".parse::<Regex>().is_err());
        assert!("[a".parse::<Regex>().is_err());
        assert!("a{2".parse::<Regex>().is_err());
        assert!("a{3,1}".parse::<Regex>().is_err());
        assert!("*a".parse::<Regex>().is_err());
        assert!("[z-a]".parse::<Regex>().is_err());
        let e = "ab)".parse::<Regex>().unwrap_err();
        assert!(e.to_string().contains("byte 2"));
    }

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(
            Regex::concat([Regex::Eps, Regex::byte(b'a')]),
            Regex::byte(b'a')
        );
        assert_eq!(
            Regex::concat([Regex::Empty, Regex::byte(b'a')]),
            Regex::Empty
        );
        assert_eq!(
            Regex::alt([Regex::Empty, Regex::byte(b'a')]),
            Regex::byte(b'a')
        );
        assert_eq!(Regex::Eps.star(), Regex::Eps);
        assert_eq!(Regex::Empty.plus(), Regex::Empty);
        assert_eq!(Regex::literal(b""), Regex::Eps);
    }

    #[test]
    fn nullability() {
        assert!(Regex::Eps.nullable());
        assert!(!Regex::byte(b'a').nullable());
        assert!(Regex::byte(b'a').star().nullable());
        assert!(!Regex::byte(b'a').plus().nullable());
        assert!("a?b*".parse::<Regex>().unwrap().nullable());
        assert!(!"a|bc".parse::<Regex>().unwrap().nullable());
    }

    #[test]
    fn display_round_trip() {
        for pattern in ["abc", "(ab|cd)*x", "[0-9]+", "a?b+c*", "x|y|z"] {
            let re: Regex = pattern.parse().unwrap();
            let printed = re.to_string();
            let reparsed: Regex = printed.parse().unwrap_or_else(|e| {
                panic!("printed form `{printed}` of `{pattern}` must reparse: {e}")
            });
            // Compare languages on a pile of short inputs.
            let d1 = Dfa::from_regex(&re);
            let d2 = Dfa::from_regex(&reparsed);
            for input in ["", "a", "ab", "abc", "x", "yz", "cdab", "0123", "bbb"] {
                assert_eq!(
                    d1.accepts(input.as_bytes()),
                    d2.accepts(input.as_bytes()),
                    "pattern `{pattern}` printed `{printed}` input `{input}`"
                );
            }
        }
    }
}

//! Value-range → automaton derivation (paper §III-B, Fig. 2).
//!
//! A bound such as `i ≥ 35` becomes a regular expression by digit-wise case
//! analysis — *check first digit*, *check second digit*, *numbers with more
//! digits* — exactly the three steps of Fig. 2. Lower and upper bound are
//! combined into a **single automaton** via DFA intersection and then
//! minimised, "which can later be optimized better than two separate
//! automata and thus requires fewer resources overall".
//!
//! Floats extend the same scheme past the decimal point. Exponent notation
//! cannot be matched exactly by a DFA (`1e+1`, `10`, `100e-1`, … denote the
//! same value), so per the paper any token containing a digit immediately
//! followed by `e`/`E` is **accepted approximately** — a possible false
//! positive, never a false negative.

use crate::dfa::Dfa;
use crate::regex::Regex;
use std::cmp::Ordering;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// The set of bytes that can be part of a number token. A token ends at the
/// first byte outside this set; that boundary is when the DFA verdict is
/// taken (§III-B).
pub const NUMBER_BYTES: &[u8] = b"0123456789+-.eE";

/// Returns `true` if `b` may appear inside a number token.
#[inline]
pub fn is_number_byte(b: u8) -> bool {
    matches!(b, b'0'..=b'9' | b'+' | b'-' | b'.' | b'e' | b'E')
}

/// An exact decimal value: sign, integer digits, fraction digits.
/// Always stored canonically (no leading integer zeros, no trailing
/// fraction zeros, no negative zero).
///
/// # Example
///
/// ```
/// use rfjson_redfa::Decimal;
///
/// let d: Decimal = "-012.340".parse()?;
/// assert_eq!(d.to_string(), "-12.34");
/// # Ok::<(), rfjson_redfa::range::ParseDecimalError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Decimal {
    negative: bool,
    /// Integer-part digit values (0–9), most significant first.
    int_digits: Vec<u8>,
    /// Fraction digit values (0–9), most significant first.
    frac_digits: Vec<u8>,
}

impl Decimal {
    /// Builds a decimal from raw digit values.
    ///
    /// # Panics
    ///
    /// Panics if any digit value exceeds 9.
    pub fn from_digits(negative: bool, int_digits: &[u8], frac_digits: &[u8]) -> Decimal {
        assert!(
            int_digits.iter().chain(frac_digits).all(|&d| d <= 9),
            "digit values must be 0..=9"
        );
        Decimal {
            negative,
            int_digits: int_digits.to_vec(),
            frac_digits: frac_digits.to_vec(),
        }
        .normalized()
    }

    /// The integer `value` as a decimal.
    pub fn from_int(value: i64) -> Decimal {
        let mag = value.unsigned_abs();
        let digits: Vec<u8> = mag.to_string().bytes().map(|b| b - b'0').collect();
        Decimal {
            negative: value < 0,
            int_digits: digits,
            frac_digits: Vec::new(),
        }
        .normalized()
    }

    fn normalized(mut self) -> Decimal {
        while self.int_digits.len() > 1 && self.int_digits[0] == 0 {
            self.int_digits.remove(0);
        }
        if self.int_digits.is_empty() {
            self.int_digits.push(0);
        }
        while self.frac_digits.last() == Some(&0) {
            self.frac_digits.pop();
        }
        if self.is_zero() {
            self.negative = false;
        }
        self
    }

    /// Is the value exactly zero?
    pub fn is_zero(&self) -> bool {
        self.int_digits.iter().all(|&d| d == 0) && self.frac_digits.is_empty()
    }

    /// Is the value negative?
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Does the value have a fractional part?
    pub fn has_fraction(&self) -> bool {
        !self.frac_digits.is_empty()
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> Decimal {
        Decimal {
            negative: false,
            int_digits: self.int_digits.clone(),
            frac_digits: self.frac_digits.clone(),
        }
    }

    /// Negated value.
    #[must_use]
    pub fn neg(&self) -> Decimal {
        Decimal {
            negative: !self.negative,
            int_digits: self.int_digits.clone(),
            frac_digits: self.frac_digits.clone(),
        }
        .normalized()
    }

    /// Approximate conversion for ground-truth comparisons.
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &d in &self.int_digits {
            v = v * 10.0 + f64::from(d);
        }
        let mut scale = 0.1;
        for &d in &self.frac_digits {
            v += f64::from(d) * scale;
            scale *= 0.1;
        }
        if self.negative {
            -v
        } else {
            v
        }
    }

    fn cmp_magnitude(&self, other: &Decimal) -> Ordering {
        self.int_digits
            .len()
            .cmp(&other.int_digits.len())
            .then_with(|| self.int_digits.cmp(&other.int_digits))
            .then_with(|| {
                // Fraction comparison: lexicographic with implicit zero pad.
                let n = self.frac_digits.len().max(other.frac_digits.len());
                for i in 0..n {
                    let a = self.frac_digits.get(i).copied().unwrap_or(0);
                    let b = other.frac_digits.get(i).copied().unwrap_or(0);
                    match a.cmp(&b) {
                        Ordering::Equal => {}
                        o => return o,
                    }
                }
                Ordering::Equal
            })
    }
}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.cmp_magnitude(other),
            (true, true) => other.cmp_magnitude(self),
        }
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negative {
            write!(f, "-")?;
        }
        for &d in &self.int_digits {
            write!(f, "{d}")?;
        }
        if !self.frac_digits.is_empty() {
            write!(f, ".")?;
            for &d in &self.frac_digits {
                write!(f, "{d}")?;
            }
        }
        Ok(())
    }
}

/// Error from [`Decimal::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDecimalError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseDecimalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal: {}", self.message)
    }
}

impl Error for ParseDecimalError {}

impl FromStr for Decimal {
    type Err = ParseDecimalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |m: &str| ParseDecimalError { message: m.into() };
        let (negative, rest) = match s.strip_prefix('-') {
            Some(r) => (true, r),
            None => (false, s),
        };
        if rest.is_empty() {
            return Err(err("empty input"));
        }
        let (int_part, frac_part) = match rest.split_once('.') {
            Some((i, f)) => (i, f),
            None => (rest, ""),
        };
        if int_part.is_empty() {
            return Err(err("missing integer part"));
        }
        if rest.contains('.') && frac_part.is_empty() {
            return Err(err("missing fraction digits after `.`"));
        }
        let digits = |p: &str| -> Result<Vec<u8>, ParseDecimalError> {
            p.bytes()
                .map(|b| {
                    if b.is_ascii_digit() {
                        Ok(b - b'0')
                    } else {
                        Err(err(&format!("unexpected character `{}`", b as char)))
                    }
                })
                .collect()
        };
        Ok(Decimal {
            negative,
            int_digits: digits(int_part)?,
            frac_digits: digits(frac_part)?,
        }
        .normalized())
    }
}

fn digit(d: u8) -> Regex {
    Regex::byte(b'0' + d)
}

/// Digit class `[lo-hi]`; `Empty` when `lo > hi`.
fn digit_range(lo: u8, hi: u8) -> Regex {
    if lo > hi {
        Regex::Empty
    } else {
        Regex::range(b'0' + lo, b'0' + hi)
    }
}

fn literal_digits(ds: &[u8]) -> Regex {
    Regex::concat(ds.iter().map(|&d| digit(d)))
}

/// Optional fraction: `(\.[0-9]+)?`.
fn any_fraction_opt() -> Regex {
    Regex::concat([Regex::byte(b'.'), Regex::digit().plus()]).opt()
}

/// Regex matching unsigned decimal tokens with value ≥ `bound`
/// (`bound` must be non-negative). This is the Fig. 2 derivation:
/// per-digit "check digit i" clauses plus the "numbers with more digits"
/// clause, extended past the decimal point.
///
/// # Panics
///
/// Panics if `bound` is negative.
pub fn ge_regex(bound: &Decimal) -> Regex {
    assert!(!bound.is_negative(), "ge_regex needs a non-negative bound");
    ge_regex_inner(bound, true)
}

/// Integer-only variant of [`ge_regex`]: fractions are not matched, giving
/// exactly the automaton of Fig. 2 for integer attributes.
pub fn ge_int_regex(bound: &Decimal) -> Regex {
    assert!(
        !bound.is_negative(),
        "ge_int_regex needs a non-negative bound"
    );
    debug_assert!(!bound.has_fraction(), "integer bound expected");
    ge_regex_inner(bound, false)
}

fn ge_regex_inner(bound: &Decimal, allow_fraction: bool) -> Regex {
    let i = &bound.int_digits;
    let p = i.len();
    let f = &bound.frac_digits;
    let q = f.len();
    let frac_opt = if allow_fraction {
        any_fraction_opt()
    } else {
        Regex::Eps
    };
    let mut alts: Vec<Regex> = Vec::new();

    // Step 1.3 of Fig. 2: integer part with more digits is always greater.
    alts.push(Regex::concat([
        digit_range(1, 9),
        Regex::digit().at_least(p),
        frac_opt.clone(),
    ]));

    // Steps 1.1, 1.2, …: digit strictly greater at position `pos`.
    for pos in 0..p {
        let gt = digit_range(i[pos] + 1, 9);
        if gt == Regex::Empty {
            continue;
        }
        alts.push(Regex::concat([
            literal_digits(&i[..pos]),
            gt,
            Regex::digit().repeat(p - pos - 1),
            frac_opt.clone(),
        ]));
    }

    // Integer part exactly equal.
    if q == 0 {
        // Any fraction only adds value: I(\.[0-9]+)? is ≥.
        alts.push(Regex::concat([literal_digits(i), frac_opt]));
    } else if allow_fraction {
        let int_exact = literal_digits(i);
        let mut fr: Vec<Regex> = Vec::new();
        // Digit strictly greater at fraction position `pos`.
        for pos in 0..q {
            let gt = digit_range(f[pos] + 1, 9);
            if gt == Regex::Empty {
                continue;
            }
            fr.push(Regex::concat([
                literal_digits(&f[..pos]),
                gt,
                Regex::digit().star(),
            ]));
        }
        // Full fraction prefix: equal or extended (any extension is ≥).
        fr.push(Regex::concat([literal_digits(f), Regex::digit().star()]));
        alts.push(Regex::concat([
            int_exact,
            Regex::byte(b'.'),
            Regex::alt(fr),
        ]));
    }
    // If q > 0 and fractions are disallowed, an integer token can never
    // be ≥ a bound with a fractional part *when equal in integer part* —
    // except being strictly greater, which is covered above.
    Regex::alt(alts)
}

/// Regex matching unsigned decimal tokens with value ≤ `bound`
/// (`bound` must be non-negative).
///
/// # Panics
///
/// Panics if `bound` is negative.
pub fn le_regex(bound: &Decimal) -> Regex {
    assert!(!bound.is_negative(), "le_regex needs a non-negative bound");
    le_regex_inner(bound, true)
}

/// Integer-only variant of [`le_regex`].
pub fn le_int_regex(bound: &Decimal) -> Regex {
    assert!(
        !bound.is_negative(),
        "le_int_regex needs a non-negative bound"
    );
    debug_assert!(!bound.has_fraction(), "integer bound expected");
    le_regex_inner(bound, false)
}

fn le_regex_inner(bound: &Decimal, allow_fraction: bool) -> Regex {
    let i = &bound.int_digits;
    let p = i.len();
    let f = &bound.frac_digits;
    let q = f.len();
    let frac_opt = if allow_fraction {
        any_fraction_opt()
    } else {
        Regex::Eps
    };
    let mut alts: Vec<Regex> = Vec::new();

    // Integer part with fewer digits is always smaller:
    // `[1-9][0-9]{0,p-2} | 0`, with any fraction.
    if p >= 2 {
        let mut shorter_alts: Vec<Regex> = vec![Regex::byte(b'0')];
        for extra in 0..=(p - 2) {
            shorter_alts.push(Regex::concat([
                digit_range(1, 9),
                Regex::digit().repeat(extra),
            ]));
        }
        alts.push(Regex::concat([Regex::alt(shorter_alts), frac_opt.clone()]));
    }

    // Digit strictly smaller at integer position `pos`.
    for pos in 0..p {
        let lo = u8::from(pos == 0 && p > 1);
        if i[pos] == 0 || lo > i[pos] - 1 {
            continue;
        }
        alts.push(Regex::concat([
            literal_digits(&i[..pos]),
            digit_range(lo, i[pos] - 1),
            Regex::digit().repeat(p - pos - 1),
            frac_opt.clone(),
        ]));
    }

    // Integer part exactly equal.
    let int_exact = literal_digits(i);
    if q == 0 {
        if allow_fraction {
            // Equal, or with an all-zero fraction ("35.000" == 35).
            let zeros = Regex::concat([Regex::byte(b'.'), Regex::byte(b'0').plus()]).opt();
            alts.push(Regex::concat([int_exact, zeros]));
        } else {
            alts.push(int_exact);
        }
    } else {
        // v = I (no fraction) < bound since bound has a fraction.
        alts.push(int_exact.clone());
        if allow_fraction {
            let mut fr: Vec<Regex> = Vec::new();
            // Digit strictly smaller at fraction position `pos`.
            for pos in 0..q {
                if f[pos] == 0 {
                    continue;
                }
                fr.push(Regex::concat([
                    literal_digits(&f[..pos]),
                    digit_range(0, f[pos] - 1),
                    Regex::digit().star(),
                ]));
            }
            // Strict prefixes of the fraction are smaller (canonical bound
            // fractions end in a non-zero digit); the full fraction —
            // possibly zero-extended — is equal.
            for prefix in 1..q {
                fr.push(literal_digits(&f[..prefix]));
            }
            fr.push(Regex::concat([literal_digits(f), Regex::byte(b'0').star()]));
            alts.push(Regex::concat([
                int_exact,
                Regex::byte(b'.'),
                Regex::alt(fr),
            ]));
        }
    }
    Regex::alt(alts)
}

/// Whether a bound pair describes integer or float attributes — this picks
/// the derivation used (Fig. 2 integer automaton vs the decimal extension)
/// and the display notation (`i` vs `f`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumberKind {
    /// Integer attribute: the automaton rejects fractional tokens.
    Integer,
    /// Float attribute: fractional tokens are compared digit-wise.
    Float,
}

/// Error constructing [`NumberBounds`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundsError {
    /// `lo` was greater than `hi`.
    Inverted {
        /// Offending lower bound.
        lo: Decimal,
        /// Offending upper bound.
        hi: Decimal,
    },
    /// Integer kind requested but a bound has a fractional part.
    FractionalIntegerBound {
        /// The offending bound.
        bound: Decimal,
    },
}

impl fmt::Display for BoundsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundsError::Inverted { lo, hi } => {
                write!(f, "inverted range: {lo} > {hi}")
            }
            BoundsError::FractionalIntegerBound { bound } => {
                write!(f, "integer range with fractional bound {bound}")
            }
        }
    }
}

impl Error for BoundsError {}

/// An inclusive value range `lo ≤ v ≤ hi` for a number raw filter.
///
/// # Example
///
/// ```
/// use rfjson_redfa::{Decimal, NumberBounds};
/// use rfjson_redfa::range::NumberKind;
///
/// let b = NumberBounds::new("0.7".parse()?, "35.1".parse()?, NumberKind::Float)?;
/// let dfa = b.to_dfa();
/// assert!(dfa.accepts(b"0.7"));
/// assert!(dfa.accepts(b"35.1"));
/// assert!(dfa.accepts(b"12"));
/// assert!(!dfa.accepts(b"35.2"));
/// assert!(!dfa.accepts(b"0.65"));
/// assert!(dfa.accepts(b"2.1e3"), "exponent tokens are approximate-accepted");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumberBounds {
    lo: Decimal,
    hi: Decimal,
    kind: NumberKind,
}

impl NumberBounds {
    /// Creates a validated range.
    ///
    /// # Errors
    ///
    /// * [`BoundsError::Inverted`] when `lo > hi`;
    /// * [`BoundsError::FractionalIntegerBound`] when `kind` is
    ///   [`NumberKind::Integer`] but a bound has fraction digits.
    pub fn new(lo: Decimal, hi: Decimal, kind: NumberKind) -> Result<NumberBounds, BoundsError> {
        if lo > hi {
            return Err(BoundsError::Inverted { lo, hi });
        }
        if kind == NumberKind::Integer {
            for b in [&lo, &hi] {
                if b.has_fraction() {
                    return Err(BoundsError::FractionalIntegerBound { bound: b.clone() });
                }
            }
        }
        Ok(NumberBounds { lo, hi, kind })
    }

    /// Convenience constructor for integer ranges.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int_range(lo: i64, hi: i64) -> NumberBounds {
        NumberBounds::new(
            Decimal::from_int(lo),
            Decimal::from_int(hi),
            NumberKind::Integer,
        )
        .expect("integer bounds are canonical")
    }

    /// Lower bound.
    pub fn lo(&self) -> &Decimal {
        &self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> &Decimal {
        &self.hi
    }

    /// Integer or float?
    pub fn kind(&self) -> NumberKind {
        self.kind
    }

    /// Ground-truth containment for a parsed value.
    pub fn contains_f64(&self, v: f64) -> bool {
        self.lo.to_f64() <= v && v <= self.hi.to_f64()
    }

    /// The paper's future-work optimisation "*adjusting the bounds of
    /// value range filters*": returns a **widened** range whose bounds
    /// keep only `digits` significant digits — the lower bound rounded
    /// towards −∞, the upper towards +∞. Widening can only add false
    /// positives, never false negatives, and cheaper bounds need smaller
    /// automata.
    ///
    /// # Panics
    ///
    /// Panics if `digits` is zero.
    #[must_use]
    pub fn widened_to_digits(&self, digits: usize) -> NumberBounds {
        assert!(digits > 0, "at least one significant digit required");
        NumberBounds {
            lo: round_decimal(&self.lo, digits, false),
            hi: round_decimal(&self.hi, digits, true),
            kind: self.kind,
        }
    }

    /// The exact range automaton (lower ∩ upper, sign-split), **without**
    /// the approximate exponent clause. Exposed for tests that verify
    /// exactness of the comparison logic itself.
    pub fn to_dfa_exact(&self) -> Dfa {
        type BoundRegexFn = fn(&Decimal) -> Regex;
        let (ge, le): (BoundRegexFn, BoundRegexFn) = match self.kind {
            NumberKind::Integer => (ge_int_regex, le_int_regex),
            NumberKind::Float => (ge_regex, le_regex),
        };
        let zero = Decimal::from_int(0);
        let mut branches: Vec<Dfa> = Vec::new();
        // Positive branch: tokens without sign, max(lo,0) ≤ v ≤ hi.
        if !self.hi.is_negative() {
            let lo_pos = if self.lo.is_negative() {
                &zero
            } else {
                &self.lo
            };
            let d_ge = Dfa::from_regex(&ge(lo_pos));
            let d_le = Dfa::from_regex(&le(&self.hi));
            branches.push(d_ge.intersect(&d_le));
        }
        // Negative branch: '-' then magnitude max(-hi,0) ≤ m ≤ -lo.
        if self.lo.is_negative() {
            let min_mag = if self.hi.is_negative() {
                self.hi.abs()
            } else {
                zero.clone()
            };
            let max_mag = self.lo.abs();
            let minus = Regex::byte(b'-');
            let d_ge = Dfa::from_regex(&Regex::concat([minus.clone(), ge(&min_mag)]));
            let d_le = Dfa::from_regex(&Regex::concat([minus, le(&max_mag)]));
            branches.push(d_ge.intersect(&d_le));
        }
        let mut it = branches.into_iter();
        let first = it
            .next()
            .expect("at least one branch: lo ≤ hi guarantees overlap");
        it.fold(first, |acc, d| acc.union(&d)).minimized()
    }

    /// The automaton the paper synthesises: the exact range automaton
    /// united with the approximate exponent acceptor (`.*[0-9][eE].*`).
    pub fn to_dfa(&self) -> Dfa {
        let exact = self.to_dfa_exact();
        let exp: Regex = Regex::concat([
            Regex::Class(rfjson_rtl::components::ByteSet::full()).star(),
            Regex::digit(),
            Regex::Class(rfjson_rtl::components::ByteSet::from_bytes(b"eE")),
            Regex::Class(rfjson_rtl::components::ByteSet::full()).star(),
        ]);
        exact.union(&Dfa::from_regex(&exp)).minimized()
    }
}

/// Rounds `d` to `digits` significant digits, toward +∞ when `up` is true
/// and toward −∞ otherwise. Fraction digits may be dropped entirely;
/// integer digits are replaced by zeros.
fn round_decimal(d: &Decimal, digits: usize, up: bool) -> Decimal {
    // Collect the digit string (int ++ frac) and locate the cut.
    let negative = d.is_negative();
    let abs = d.abs();
    let int_len = abs.to_string().split('.').next().map_or(1, str::len);
    let all: Vec<u8> = abs
        .to_string()
        .bytes()
        .filter(u8::is_ascii_digit)
        .map(|b| b - b'0')
        .collect();
    // Skip leading zeros when counting significant digits ("0.0071").
    let first_sig = all.iter().position(|&x| x != 0).unwrap_or(all.len());
    let cut = (first_sig + digits).min(all.len());
    let truncated: Vec<u8> = all[..cut]
        .iter()
        .copied()
        .chain(std::iter::repeat_n(0, all.len().saturating_sub(cut)))
        .collect();
    let exact = all[cut..].iter().all(|&x| x == 0);
    // Magnitude rounding direction: up for positive-up / negative-down.
    let magnitude_up = up != negative;
    let mut digits_out = truncated;
    if !exact && magnitude_up {
        // Increment the truncated magnitude at position cut−1.
        let mut i = cut;
        loop {
            if i == 0 {
                digits_out.insert(0, 1);
                break;
            }
            i -= 1;
            if digits_out[i] == 9 {
                digits_out[i] = 0;
            } else {
                digits_out[i] += 1;
                break;
            }
        }
    }
    let int_len = int_len + digits_out.len().saturating_sub(all.len());
    let (int_part, frac_part) = digits_out.split_at(int_len.min(digits_out.len()));
    Decimal::from_digits(negative, int_part, frac_part)
}

impl fmt::Display for NumberBounds {
    /// Paper notation: `12 ≤ i ≤ 49`, `0.7 ≤ f ≤ 35.1`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            NumberKind::Integer => 'i',
            NumberKind::Float => 'f',
        };
        write!(f, "{} ≤ {k} ≤ {}", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(s: &str) -> Decimal {
        s.parse().expect("decimal parses")
    }

    #[test]
    fn decimal_parse_and_display() {
        assert_eq!(dec("35").to_string(), "35");
        assert_eq!(dec("35.10").to_string(), "35.1");
        assert_eq!(dec("-012.340").to_string(), "-12.34");
        assert_eq!(dec("0").to_string(), "0");
        assert_eq!(dec("-0").to_string(), "0", "negative zero normalises");
        assert_eq!(dec("0.7").to_string(), "0.7");
        assert!("".parse::<Decimal>().is_err());
        assert!("1.".parse::<Decimal>().is_err());
        assert!(".5".parse::<Decimal>().is_err());
        assert!("1a".parse::<Decimal>().is_err());
        assert!("--1".parse::<Decimal>().is_err());
    }

    #[test]
    fn decimal_ordering() {
        let mut values = vec![
            dec("-12.5"),
            dec("-1"),
            dec("0"),
            dec("0.65"),
            dec("0.7"),
            dec("12"),
            dec("35.1"),
            dec("35.2"),
            dec("100"),
        ];
        let sorted = values.clone();
        values.reverse();
        values.sort();
        assert_eq!(values, sorted);
        assert!(dec("35.1") < dec("35.15"));
        assert!(dec("-2") < dec("-1.5"));
        assert_eq!(dec("5.0"), dec("5"));
    }

    #[test]
    // Exact equality is intentional: these decimals are dyadic and
    // convert to f64 without rounding.
    #[allow(clippy::float_cmp)]
    fn decimal_to_f64() {
        assert_eq!(dec("35.25").to_f64(), 35.25);
        assert_eq!(dec("-0.5").to_f64(), -0.5);
        assert_eq!(dec("0").to_f64(), 0.0);
    }

    #[test]
    fn fig2_ge_35() {
        // The exact running example of the paper.
        let re = ge_int_regex(&dec("35"));
        let dfa = Dfa::from_regex(&re).minimized();
        for v in 0..500u32 {
            let s = v.to_string();
            assert_eq!(dfa.accepts(s.as_bytes()), v >= 35, "value {v}");
        }
        // Leading zeros are not canonical numbers: not matched.
        assert!(!dfa.accepts(b"035"));
        assert!(!dfa.accepts(b""));
    }

    #[test]
    fn int_range_exhaustive() {
        for (lo, hi) in [(12, 49), (0, 5153), (140, 3155), (17, 363), (1, 1), (0, 0)] {
            let b = NumberBounds::int_range(lo, hi);
            let dfa = b.to_dfa_exact();
            let sweep_hi = (hi + 50).max(60);
            for v in 0..=sweep_hi {
                let s = v.to_string();
                assert_eq!(
                    dfa.accepts(s.as_bytes()),
                    v >= lo && v <= hi,
                    "[{lo},{hi}] value {v}"
                );
            }
        }
    }

    #[test]
    fn float_range_hundredths() {
        // 0.7 ≤ f ≤ 35.1 — every hundredth from 0 to 40.
        let b = NumberBounds::new(dec("0.7"), dec("35.1"), NumberKind::Float).unwrap();
        let dfa = b.to_dfa_exact();
        for k in 0..4000u32 {
            let int = k / 100;
            let frac = k % 100;
            let s = if frac == 0 {
                format!("{int}")
            } else if frac % 10 == 0 {
                format!("{int}.{}", frac / 10)
            } else {
                format!("{int}.{frac:02}")
            };
            let v = f64::from(k) / 100.0;
            let want = (0.7..=35.1).contains(&v);
            assert_eq!(dfa.accepts(s.as_bytes()), want, "token {s}");
        }
    }

    #[test]
    fn float_range_trailing_zeros() {
        let b = NumberBounds::new(dec("0.7"), dec("35.1"), NumberKind::Float).unwrap();
        let dfa = b.to_dfa_exact();
        assert!(dfa.accepts(b"35.10"), "35.10 == 35.1");
        assert!(dfa.accepts(b"35.100"));
        assert!(!dfa.accepts(b"35.101"));
        assert!(dfa.accepts(b"0.70"));
        assert!(dfa.accepts(b"1.000"));
        assert!(!dfa.accepts(b"0.6999"));
        assert!(dfa.accepts(b"0.7000001"));
    }

    #[test]
    fn negative_ranges() {
        // -12.5 ≤ f ≤ 43.1 (QS1 temperature).
        let b = NumberBounds::new(dec("-12.5"), dec("43.1"), NumberKind::Float).unwrap();
        let dfa = b.to_dfa_exact();
        for (tok, want) in [
            (&b"-12.5"[..], true),
            (b"-12.51", false),
            (b"-13", false),
            (b"-0.1", true),
            (b"-0", true),
            (b"0", true),
            (b"43.1", true),
            (b"43.2", false),
            (b"-12.49", true),
        ] {
            assert_eq!(
                dfa.accepts(tok),
                want,
                "token {:?}",
                std::str::from_utf8(tok)
            );
        }
    }

    #[test]
    fn all_negative_range() {
        // -20 ≤ v ≤ -5.
        let b = NumberBounds::new(dec("-20"), dec("-5"), NumberKind::Float).unwrap();
        let dfa = b.to_dfa_exact();
        for v in -30i32..10 {
            let s = v.to_string();
            assert_eq!(
                dfa.accepts(s.as_bytes()),
                (-20..=-5).contains(&v),
                "value {v}"
            );
        }
        assert!(dfa.accepts(b"-5.0"));
        assert!(dfa.accepts(b"-19.99"));
        assert!(!dfa.accepts(b"-4.99"));
        assert!(!dfa.accepts(b"-20.01"));
        assert!(!dfa.accepts(b"5"));
    }

    #[test]
    fn exponent_rule_is_approximate() {
        let b = NumberBounds::int_range(10, 20);
        let dfa = b.to_dfa();
        // In-range plain tokens still work.
        assert!(dfa.accepts(b"15"));
        assert!(!dfa.accepts(b"25"));
        // Anything with digit+e is accepted, even if out of range.
        assert!(dfa.accepts(b"9e9"));
        assert!(dfa.accepts(b"2.1e3"));
        assert!(dfa.accepts(b"100e-1"));
        assert!(dfa.accepts(b"1E+1"));
        // 'e' with no digit before it is not a number — not accepted.
        assert!(!dfa.accepts(b"e5"));
        assert!(!dfa.accepts(b".e5"));
    }

    #[test]
    fn single_automaton_is_smaller_than_two() {
        // The paper's point: one automaton for the range, minimised, is
        // cheaper than two separate ones.
        let lo = dec("140");
        let hi = dec("3155");
        let ge = Dfa::from_regex(&ge_int_regex(&lo)).minimized();
        let le = Dfa::from_regex(&le_int_regex(&hi)).minimized();
        let range = NumberBounds::int_range(140, 3155).to_dfa_exact();
        assert!(
            range.num_states() <= ge.num_states() + le.num_states(),
            "range {} vs {}+{}",
            range.num_states(),
            ge.num_states(),
            le.num_states()
        );
    }

    #[test]
    fn bounds_validation() {
        assert!(matches!(
            NumberBounds::new(dec("5"), dec("4"), NumberKind::Integer),
            Err(BoundsError::Inverted { .. })
        ));
        assert!(matches!(
            NumberBounds::new(dec("1.5"), dec("4"), NumberKind::Integer),
            Err(BoundsError::FractionalIntegerBound { .. })
        ));
        let e = NumberBounds::new(dec("5"), dec("4"), NumberKind::Integer).unwrap_err();
        assert!(e.to_string().contains("inverted"));
    }

    #[test]
    fn widened_bounds_are_wider_and_cheaper() {
        let b = NumberBounds::new(dec("83.36"), dec("3322.67"), NumberKind::Float).unwrap();
        let w = b.widened_to_digits(1);
        assert_eq!(w.lo().to_string(), "80");
        assert_eq!(w.hi().to_string(), "4000");
        // Containment: everything the original accepts, the widened must.
        let orig = b.to_dfa_exact();
        let wide = w.to_dfa_exact();
        for probe in ["83.36", "100", "3322.67", "90.5", "84"] {
            if orig.accepts(probe.as_bytes()) {
                assert!(wide.accepts(probe.as_bytes()), "{probe}");
            }
        }
        // And it is genuinely wider.
        assert!(wide.accepts(b"81"));
        assert!(!orig.accepts(b"81"));
        // Fewer states: cheaper hardware.
        assert!(wide.num_states() <= orig.num_states());
    }

    #[test]
    fn widening_rounds_negative_bounds_outward() {
        let b = NumberBounds::new(dec("-12.5"), dec("43.1"), NumberKind::Float).unwrap();
        let w = b.widened_to_digits(1);
        assert_eq!(w.lo().to_string(), "-20", "lo moves toward -inf");
        assert_eq!(w.hi().to_string(), "50", "hi moves toward +inf");
    }

    #[test]
    fn widening_exact_values_is_identity() {
        let b = NumberBounds::int_range(100, 4000);
        let w = b.widened_to_digits(1);
        assert_eq!(w.lo().to_string(), "100");
        assert_eq!(w.hi().to_string(), "4000");
        let w2 = b.widened_to_digits(5);
        assert_eq!(w2, b);
    }

    #[test]
    fn widening_carry_chain() {
        // 9.97 rounded up to 2 digits: 10.
        let b = NumberBounds::new(dec("0.5"), dec("9.97"), NumberKind::Float).unwrap();
        let w = b.widened_to_digits(2);
        assert_eq!(w.hi().to_string(), "10");
        assert_eq!(w.lo().to_string(), "0.5");
    }

    #[test]
    fn display_uses_paper_notation() {
        let b = NumberBounds::int_range(12, 49);
        assert_eq!(b.to_string(), "12 ≤ i ≤ 49");
        let f = NumberBounds::new(dec("0.7"), dec("35.1"), NumberKind::Float).unwrap();
        assert_eq!(f.to_string(), "0.7 ≤ f ≤ 35.1");
    }

    #[test]
    fn tenths_sweep_matches_integer_ground_truth() {
        // 20.3 ≤ f ≤ 69.1 over every tenth in [0, 100): ground truth in
        // exact integer tenths to dodge f64 boundary rounding.
        let b = NumberBounds::new(dec("20.3"), dec("69.1"), NumberKind::Float).unwrap();
        let dfa = b.to_dfa_exact();
        for k in 0..1000u32 {
            let s = if k % 10 == 0 {
                format!("{}", k / 10)
            } else {
                format!("{}.{}", k / 10, k % 10)
            };
            let want = (203..=691).contains(&k);
            assert_eq!(dfa.accepts(s.as_bytes()), want, "value {s}");
        }
    }

    #[test]
    fn contains_f64_interior_points() {
        let b = NumberBounds::new(dec("20.3"), dec("69.1"), NumberKind::Float).unwrap();
        assert!(b.contains_f64(20.5));
        assert!(b.contains_f64(69.0));
        assert!(!b.contains_f64(20.0));
        assert!(!b.contains_f64(70.0));
        assert!(!b.contains_f64(-20.5));
    }
}

//! Graphviz rendering of DFAs — the Fig. 2 state diagrams, regenerable.

use crate::dfa::Dfa;
use rfjson_rtl::components::ByteSet;
use std::fmt::Write;

/// Renders `dfa` in Graphviz dot syntax. Accepting states are drawn as
/// double circles, the start state has an entry arrow, and edges are
/// labelled with compact byte-class descriptions (`0-2`, `5-9`, `other`).
///
/// # Example
///
/// ```
/// use rfjson_redfa::{Dfa, Regex};
/// use rfjson_redfa::dot::to_dot;
///
/// let dfa = Dfa::from_regex(&"ab".parse::<Regex>()?).minimized();
/// let dot = to_dot(&dfa, "ab");
/// assert!(dot.starts_with("digraph ab"));
/// assert!(dot.contains("doublecircle"));
/// # Ok::<(), rfjson_redfa::regex::ParseRegexError>(())
/// ```
pub fn to_dot(dfa: &Dfa, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    let _ = writeln!(out, "  _start [shape=point];");
    let _ = writeln!(out, "  _start -> s{};", dfa.start());
    for s in 0..dfa.num_states() as u16 {
        if dfa.is_accept(s) {
            let _ = writeln!(out, "  s{s} [shape=doublecircle];");
        }
    }
    for s in 0..dfa.num_states() as u16 {
        // Group classes by target for compact edges.
        let mut by_target: Vec<(u16, Vec<u8>)> = Vec::new();
        for c in 0..dfa.num_classes() as u8 {
            let t = dfa.step_class(s, c);
            match by_target.iter_mut().find(|(bt, _)| *bt == t) {
                Some((_, cs)) => cs.push(c),
                None => by_target.push((t, vec![c])),
            }
        }
        for (t, classes) in by_target {
            let mut set = ByteSet::new();
            for c in classes {
                set = set.union(&dfa.class_set(c));
            }
            let _ = writeln!(out, "  s{s} -> s{t} [label=\"{}\"];", class_label(&set));
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Compact human label for a byte set.
fn class_label(set: &ByteSet) -> String {
    if set.len() == 256 {
        return "any".to_string();
    }
    if set.len() > 128 {
        return "other".to_string();
    }
    let mut parts = Vec::new();
    for (lo, hi) in set.ranges() {
        let show = |b: u8| -> String {
            if b.is_ascii_graphic() {
                (b as char).to_string()
            } else {
                format!("x{b:02x}")
            }
        };
        if lo == hi {
            parts.push(show(lo));
        } else {
            parts.push(format!("{}-{}", show(lo), show(hi)));
        }
    }
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::NumberBounds;
    use crate::regex::Regex;

    #[test]
    fn dot_structure() {
        let dfa = Dfa::from_regex(&"a(b|c)".parse::<Regex>().unwrap()).minimized();
        let dot = to_dot(&dfa, "g");
        assert!(dot.starts_with("digraph g {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("_start -> s0"));
        assert!(dot.contains("doublecircle"));
        // Every state appears as an edge source.
        for s in 0..dfa.num_states() {
            assert!(dot.contains(&format!("s{s} ->")), "state {s} has edges");
        }
    }

    #[test]
    fn labels_group_classes() {
        // The i >= 35 automaton of Fig. 2: digits grouped, "other" for the
        // junk class.
        let dfa = NumberBounds::int_range(35, 99_999_999).to_dfa_exact();
        let dot = to_dot(&dfa, "ge35");
        assert!(dot.contains("label=\"other\"") || dot.contains("label=\"any\""));
        assert!(dot.contains("0-"), "digit range labels present");
    }

    #[test]
    fn label_rendering() {
        assert_eq!(class_label(&ByteSet::from_range(b'0', b'9')), "0-9");
        assert_eq!(class_label(&ByteSet::from_byte(b'e')), "e");
        assert_eq!(class_label(&ByteSet::full()), "any");
        assert_eq!(
            class_label(&ByteSet::from_bytes(b"ab").complement()),
            "other"
        );
    }
}

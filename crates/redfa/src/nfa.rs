//! Thompson construction: regex → ε-NFA.

use crate::regex::Regex;
use rfjson_rtl::components::ByteSet;

/// State index within an [`Nfa`].
pub type StateId = usize;

/// A non-deterministic finite automaton with ε-transitions, built by
/// Thompson construction. One start state, one accept state.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// `eps[s]` lists ε-successors of `s`.
    pub eps: Vec<Vec<StateId>>,
    /// `moves[s]` lists `(class, target)` byte transitions of `s`.
    pub moves: Vec<Vec<(ByteSet, StateId)>>,
    /// Entry state.
    pub start: StateId,
    /// Single accepting state.
    pub accept: StateId,
}

impl Nfa {
    /// Builds an NFA for `regex` via Thompson construction.
    pub fn from_regex(regex: &Regex) -> Nfa {
        let mut b = Builder::default();
        let (start, accept) = b.build(regex);
        Nfa {
            eps: b.eps,
            moves: b.moves,
            start,
            accept,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.eps.len()
    }

    /// ε-closure of a set of states (sorted, deduplicated).
    pub fn eps_closure(&self, states: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.num_states()];
        let mut stack: Vec<StateId> = states.to_vec();
        for &s in states {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        (0..self.num_states()).filter(|&s| seen[s]).collect()
    }

    /// Reference matcher (used to validate the DFA pipeline in tests):
    /// simulates the NFA directly.
    pub fn accepts(&self, input: &[u8]) -> bool {
        let mut current = self.eps_closure(&[self.start]);
        for &b in input {
            let mut next = Vec::new();
            for &s in &current {
                for (class, t) in &self.moves[s] {
                    if class.contains(b) {
                        next.push(*t);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            current = self.eps_closure(&next);
            if current.is_empty() {
                return false;
            }
        }
        current.contains(&self.accept)
    }
}

#[derive(Default)]
struct Builder {
    eps: Vec<Vec<StateId>>,
    moves: Vec<Vec<(ByteSet, StateId)>>,
}

impl Builder {
    fn state(&mut self) -> StateId {
        self.eps.push(Vec::new());
        self.moves.push(Vec::new());
        self.eps.len() - 1
    }

    fn eps_edge(&mut self, from: StateId, to: StateId) {
        self.eps[from].push(to);
    }

    fn build(&mut self, regex: &Regex) -> (StateId, StateId) {
        match regex {
            Regex::Empty => {
                let s = self.state();
                let a = self.state();
                (s, a) // no edge: accepts nothing
            }
            Regex::Eps => {
                let s = self.state();
                let a = self.state();
                self.eps_edge(s, a);
                (s, a)
            }
            Regex::Class(set) => {
                let s = self.state();
                let a = self.state();
                self.moves[s].push((*set, a));
                (s, a)
            }
            Regex::Concat(parts) => {
                let mut first = None;
                let mut last: Option<StateId> = None;
                for p in parts {
                    let (ps, pa) = self.build(p);
                    if let Some(prev) = last {
                        self.eps_edge(prev, ps);
                    } else {
                        first = Some(ps);
                    }
                    last = Some(pa);
                }
                match (first, last) {
                    (Some(f), Some(l)) => (f, l),
                    _ => {
                        let s = self.state();
                        let a = self.state();
                        self.eps_edge(s, a);
                        (s, a)
                    }
                }
            }
            Regex::Alt(parts) => {
                let s = self.state();
                let a = self.state();
                for p in parts {
                    let (ps, pa) = self.build(p);
                    self.eps_edge(s, ps);
                    self.eps_edge(pa, a);
                }
                (s, a)
            }
            Regex::Star(inner) => {
                let s = self.state();
                let a = self.state();
                let (is, ia) = self.build(inner);
                self.eps_edge(s, is);
                self.eps_edge(s, a);
                self.eps_edge(ia, is);
                self.eps_edge(ia, a);
                (s, a)
            }
            Regex::Plus(inner) => {
                let (is, ia) = self.build(inner);
                let a = self.state();
                self.eps_edge(ia, is);
                self.eps_edge(ia, a);
                (is, a)
            }
            Regex::Opt(inner) => {
                let s = self.state();
                let a = self.state();
                let (is, ia) = self.build(inner);
                self.eps_edge(s, is);
                self.eps_edge(s, a);
                self.eps_edge(ia, a);
                (s, a)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nfa(pattern: &str) -> Nfa {
        Nfa::from_regex(&pattern.parse().expect("pattern parses"))
    }

    #[test]
    fn literal() {
        let n = nfa("ab");
        assert!(n.accepts(b"ab"));
        assert!(!n.accepts(b"a"));
        assert!(!n.accepts(b"abc"));
        assert!(!n.accepts(b""));
    }

    #[test]
    fn alternation_and_star() {
        let n = nfa("(ab|c)*");
        assert!(n.accepts(b""));
        assert!(n.accepts(b"ab"));
        assert!(n.accepts(b"cab"));
        assert!(n.accepts(b"ababcc"));
        assert!(!n.accepts(b"b"));
    }

    #[test]
    fn plus_and_opt() {
        let n = nfa("a+b?");
        assert!(n.accepts(b"a"));
        assert!(n.accepts(b"aaab"));
        assert!(!n.accepts(b"b"));
        assert!(!n.accepts(b""));
    }

    #[test]
    fn empty_language() {
        let n = Nfa::from_regex(&Regex::Empty);
        assert!(!n.accepts(b""));
        assert!(!n.accepts(b"a"));
    }

    #[test]
    fn eps_closure_transitive() {
        // (a?)? builds a chain of ε edges; closure from start must reach
        // the accept state.
        let n = nfa("a?");
        let closure = n.eps_closure(&[n.start]);
        assert!(closure.contains(&n.accept));
    }

    #[test]
    fn classes_in_nfa() {
        let n = nfa("[0-9]+x");
        assert!(n.accepts(b"42x"));
        assert!(!n.accepts(b"x"));
        assert!(!n.accepts(b"42"));
    }
}

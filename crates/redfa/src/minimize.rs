//! DFA minimisation.
//!
//! Step 2 of the paper's Fig. 2 flow: *"the regular expression is converted
//! into a DFA and minimized. Methods to achieve this are already well
//! known."* We use Moore-style partition refinement after trimming
//! unreachable states; with byte-class compression the refinement runs over
//! `num_classes` columns instead of 256.

use crate::dfa::Dfa;

/// Returns the minimal DFA equivalent to `dfa`.
///
/// The result's states are renumbered in BFS-from-start order, which makes
/// minimised automata structurally reproducible (stable state numbering for
/// netlist elaboration and for tests).
pub fn minimize(dfa: &Dfa) -> Dfa {
    // 1. Trim: only reachable states take part.
    let n = dfa.num_states();
    let k = dfa.num_classes();
    let mut reachable = vec![false; n];
    let mut order: Vec<u16> = vec![dfa.start()];
    reachable[dfa.start() as usize] = true;
    let mut i = 0;
    while i < order.len() {
        let s = order[i];
        i += 1;
        for c in 0..k as u8 {
            let t = dfa.step_class(s, c);
            if !reachable[t as usize] {
                reachable[t as usize] = true;
                order.push(t);
            }
        }
    }

    // 2. Initial partition: accepting vs rejecting (reachable only).
    let mut block_of: Vec<usize> = vec![usize::MAX; n];
    for &s in &order {
        block_of[s as usize] = usize::from(dfa.is_accept(s));
    }
    let mut num_blocks = 2;
    // Degenerate case: all states in one block.
    if order.iter().all(|&s| dfa.is_accept(s)) || order.iter().all(|&s| !dfa.is_accept(s)) {
        for &s in &order {
            block_of[s as usize] = 0;
        }
        num_blocks = 1;
    }

    // 3. Refinement: split blocks by transition signature until stable.
    loop {
        use std::collections::HashMap;
        let mut next_index: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
        let mut next_block: Vec<usize> = vec![usize::MAX; n];
        let mut next_count = 0;
        for &s in &order {
            let sig: Vec<usize> = (0..k as u8)
                .map(|c| block_of[dfa.step_class(s, c) as usize])
                .collect();
            let key = (block_of[s as usize], sig);
            let id = *next_index.entry(key).or_insert_with(|| {
                next_count += 1;
                next_count - 1
            });
            next_block[s as usize] = id;
        }
        if next_count == num_blocks {
            break;
        }
        block_of = next_block;
        num_blocks = next_count;
    }

    // 4. Build the quotient automaton, renumbering blocks in BFS order from
    //    the start block.
    let mut new_id: Vec<Option<u16>> = vec![None; num_blocks];
    let mut repr: Vec<u16> = Vec::new(); // representative per new state
    let start_block = block_of[dfa.start() as usize];
    new_id[start_block] = Some(0);
    repr.push(dfa.start());
    let mut head = 0;
    while head < repr.len() {
        let s = repr[head];
        head += 1;
        for c in 0..k as u8 {
            let t = dfa.step_class(s, c);
            let tb = block_of[t as usize];
            if new_id[tb].is_none() {
                new_id[tb] = Some(u16::try_from(repr.len()).expect("DFA too large"));
                repr.push(t);
            }
        }
    }
    let m = repr.len();
    let mut trans = vec![0u16; m * k];
    let mut accept = vec![false; m];
    for (idx, &s) in repr.iter().enumerate() {
        accept[idx] = dfa.is_accept(s);
        for c in 0..k as u8 {
            let t = dfa.step_class(s, c);
            trans[idx * k + c as usize] =
                new_id[block_of[t as usize]].expect("all blocks reachable from start");
        }
    }
    let mut class_of = [0u8; 256];
    for b in 0u16..256 {
        class_of[b as usize] = dfa.class_of(b as u8);
    }
    Dfa::from_parts(class_of, k, trans, accept, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn dfa(pattern: &str) -> Dfa {
        Dfa::from_regex(&pattern.parse().expect("pattern parses"))
    }

    #[test]
    fn preserves_language() {
        let patterns = [
            "(a|b)*abb",
            "[0-9]{1,4}",
            "(3[5-9])|([4-9][0-9])|([1-9][0-9]{2,})",
            "x(yz)*",
        ];
        let inputs: Vec<Vec<u8>> = {
            // All strings up to length 4 over {a,b,x,y,z,0,3,5,9}.
            let alpha = b"abxyz0359";
            let mut v: Vec<Vec<u8>> = vec![vec![]];
            let mut layer: Vec<Vec<u8>> = vec![vec![]];
            for _ in 0..4 {
                let mut next = Vec::new();
                for w in &layer {
                    for &c in alpha {
                        let mut w2 = w.clone();
                        w2.push(c);
                        next.push(w2);
                    }
                }
                v.extend(next.iter().cloned());
                layer = next;
            }
            v
        };
        for p in patterns {
            let d = dfa(p);
            let m = d.minimized();
            assert!(m.num_states() <= d.num_states(), "pattern {p}");
            for w in &inputs {
                assert_eq!(d.accepts(w), m.accepts(w), "pattern {p}, input {w:?}");
            }
        }
    }

    #[test]
    fn fig2_example_has_five_states() {
        // Fig. 2 of the paper shows the minimal DFA for i ≥ 35 with states
        // s0..s3 plus the accepting state — 5 states... but note their
        // figure folds the two accepting situations; the true minimal DFA
        // over {0,1-2,3,4-9,...} alphabet accepting
        // (3[5-9])|([4-9][0-9])|([1-9][0-9]{2,}) needs a dead state as well.
        let d = dfa("(3[5-9])|([4-9][0-9])|([1-9][0-9]{2,})").minimized();
        // states: start, saw-3, saw-[4-9], saw-"3x<5"/need-more, accept,
        // accept-final, dead … minimality is what matters:
        let m = d.minimized();
        assert_eq!(m.num_states(), d.num_states(), "idempotent");
        // Language checks around the boundary:
        for v in 0..200u32 {
            let s = v.to_string();
            assert_eq!(d.accepts(s.as_bytes()), v >= 35, "value {v}");
        }
    }

    #[test]
    fn single_block_languages() {
        // `.*` accepts everything: minimal DFA has exactly 1 state.
        let d = dfa(".*").minimized();
        assert_eq!(d.num_states(), 1);
        assert!(d.accepts(b"") && d.accepts(b"anything"));
        // Empty language: minimal DFA has exactly 1 (dead) state.
        let e = Dfa::from_regex(&Regex::Empty).minimized();
        assert_eq!(e.num_states(), 1);
        assert!(!e.accepts(b"") && !e.accepts(b"x"));
    }

    #[test]
    fn redundant_states_merged() {
        // a|b as an NFA-derived DFA has separate paths; minimised they fuse.
        let d = dfa("(a|b)c");
        let m = d.minimized();
        assert!(m.num_states() <= 4, "start, saw-ab, accept, dead");
        assert!(m.accepts(b"ac") && m.accepts(b"bc") && !m.accepts(b"cc"));
    }

    #[test]
    fn stable_renumbering() {
        let a = dfa("ab|ac").minimized();
        let b = dfa("a(b|c)").minimized();
        // Same language → identical minimal automaton including numbering.
        assert_eq!(a, b);
    }
}

//! Deterministic finite automata with byte-class compression.
//!
//! A [`Dfa`] is **complete** (every state has a transition for every byte)
//! and operates on compressed input classes: bytes that behave identically
//! everywhere share a class id, so the transition table is
//! `num_states × num_classes` — the same sharing a synthesis tool exploits
//! when the automaton becomes hardware.

use crate::minimize;
use crate::nfa::Nfa;
use crate::regex::Regex;
use rfjson_rtl::components::ByteSet;
use std::collections::HashMap;
use std::fmt;

/// Accept flag carried in the MSB of every [`Dfa::dense_table`] state
/// word: `word & DENSE_ACCEPT_BIT != 0` means the state accepts, and
/// `word & !DENSE_ACCEPT_BIT` is the state index for the next row lookup.
pub const DENSE_ACCEPT_BIT: u16 = 0x8000;

/// A complete DFA over bytes.
///
/// # Example
///
/// ```
/// use rfjson_redfa::{Dfa, Regex};
///
/// let re: Regex = "[1-9][0-9]*".parse()?;
/// let dfa = Dfa::from_regex(&re).minimized();
/// assert!(dfa.accepts(b"907"));
/// assert!(!dfa.accepts(b"0907"));
/// # Ok::<(), rfjson_redfa::regex::ParseRegexError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    /// `class_of[b]` is the input class of byte `b`.
    class_of: [u8; 256],
    /// Number of distinct classes.
    num_classes: usize,
    /// Row-major transition table: `trans[s * num_classes + c]`.
    trans: Vec<u16>,
    /// Acceptance flag per state.
    accept: Vec<bool>,
    /// Start state.
    start: u16,
}

impl Dfa {
    /// Builds a DFA from a regex (Thompson + subset construction).
    /// The result is complete but not minimal; call [`Dfa::minimized`].
    pub fn from_regex(regex: &Regex) -> Dfa {
        Self::from_nfa(&Nfa::from_regex(regex))
    }

    /// Subset construction from an NFA.
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        // 1. Alphabet partition: bytes with identical NFA-transition
        //    behaviour share a class.
        let mut sets: Vec<&ByteSet> = Vec::new();
        for moves in &nfa.moves {
            for (set, _) in moves {
                sets.push(set);
            }
        }
        let (class_of, num_classes, class_sets) = partition_alphabet(&sets);

        // 2. Subset construction over classes.
        let mut subset_index: HashMap<Vec<usize>, u16> = HashMap::new();
        let mut subsets: Vec<Vec<usize>> = Vec::new();
        let mut trans: Vec<u16> = Vec::new();
        let start_set = nfa.eps_closure(&[nfa.start]);
        subset_index.insert(start_set.clone(), 0);
        subsets.push(start_set);
        let mut work = vec![0u16];
        while let Some(s) = work.pop() {
            let subset = subsets[s as usize].clone();
            // Ensure row space.
            let row = s as usize * num_classes;
            if trans.len() < row + num_classes {
                trans.resize(row + num_classes, 0);
            }
            for c in 0..num_classes {
                let probe = class_sets[c]
                    .iter()
                    .next()
                    .expect("classes are non-empty by construction");
                let mut next: Vec<usize> = Vec::new();
                for &st in &subset {
                    for (set, t) in &nfa.moves[st] {
                        if set.contains(probe) {
                            next.push(*t);
                        }
                    }
                }
                next.sort_unstable();
                next.dedup();
                let closure = nfa.eps_closure(&next);
                let id = match subset_index.get(&closure) {
                    Some(&id) => id,
                    None => {
                        let id = u16::try_from(subsets.len()).expect("DFA too large");
                        subset_index.insert(closure.clone(), id);
                        subsets.push(closure);
                        work.push(id);
                        id
                    }
                };
                trans[row + c] = id;
            }
        }
        let num_states = subsets.len();
        trans.resize(num_states * num_classes, 0);
        let accept = subsets
            .iter()
            .map(|sub| sub.contains(&nfa.accept))
            .collect();
        Dfa {
            class_of,
            num_classes,
            trans,
            accept,
            start: 0,
        }
        .normalized()
    }

    /// Builds a DFA directly from explicit parts (used by the minimiser and
    /// the product constructions).
    pub(crate) fn from_parts(
        class_of: [u8; 256],
        num_classes: usize,
        trans: Vec<u16>,
        accept: Vec<bool>,
        start: u16,
    ) -> Dfa {
        debug_assert_eq!(trans.len(), accept.len() * num_classes);
        Dfa {
            class_of,
            num_classes,
            trans,
            accept,
            start,
        }
        .normalized()
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.accept.len()
    }

    /// Number of input classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Start state.
    pub fn start(&self) -> u16 {
        self.start
    }

    /// Is `state` accepting?
    pub fn is_accept(&self, state: u16) -> bool {
        self.accept[state as usize]
    }

    /// Input class of a byte.
    pub fn class_of(&self, byte: u8) -> u8 {
        self.class_of[byte as usize]
    }

    /// The byte set forming input class `c`.
    pub fn class_set(&self, c: u8) -> ByteSet {
        let mut s = ByteSet::new();
        for b in 0u16..256 {
            if self.class_of[b as usize] == c {
                s.insert(b as u8);
            }
        }
        s
    }

    /// One transition step.
    pub fn step(&self, state: u16, byte: u8) -> u16 {
        let c = self.class_of[byte as usize] as usize;
        self.trans[state as usize * self.num_classes + c]
    }

    /// Exports the automaton as a dense row-major table for table-driven
    /// execution: `table[s * 256 + b]` is the successor of state `s` on
    /// byte `b`, with [`DENSE_ACCEPT_BIT`] set iff that successor accepts.
    ///
    /// The class indirection of [`Dfa::step`] (two dependent loads per
    /// byte) collapses into a single load; the accept flag rides in the
    /// state word so no second `accept[]` lookup is needed either.
    ///
    /// # Panics
    ///
    /// Panics if the DFA has ≥ 2¹⁵ states (the accept bit needs the MSB).
    pub fn dense_table(&self) -> Vec<u16> {
        assert!(
            self.num_states() < DENSE_ACCEPT_BIT as usize,
            "dense table limited to {DENSE_ACCEPT_BIT} states"
        );
        let mut table = Vec::with_capacity(self.num_states() * 256);
        for s in 0..self.num_states() as u16 {
            for b in 0..=255u8 {
                let next = self.step(s, b);
                let accept = if self.is_accept(next) {
                    DENSE_ACCEPT_BIT
                } else {
                    0
                };
                table.push(next | accept);
            }
        }
        table
    }

    /// The start state in dense-table encoding (accept bit folded in).
    pub fn dense_start(&self) -> u16 {
        let accept = if self.is_accept(self.start) {
            DENSE_ACCEPT_BIT
        } else {
            0
        };
        self.start | accept
    }

    /// Transition by class id (used by elaboration).
    pub fn step_class(&self, state: u16, class: u8) -> u16 {
        self.trans[state as usize * self.num_classes + class as usize]
    }

    /// Runs the DFA over `input` from the start state; returns the final
    /// state.
    pub fn run(&self, input: &[u8]) -> u16 {
        let mut s = self.start;
        for &b in input {
            s = self.step(s, b);
        }
        s
    }

    /// Whole-input acceptance.
    pub fn accepts(&self, input: &[u8]) -> bool {
        self.is_accept(self.run(input))
    }

    /// Minimised equivalent DFA (unreachable-state removal + partition
    /// refinement).
    #[must_use]
    pub fn minimized(&self) -> Dfa {
        minimize::minimize(self)
    }

    /// Language intersection via the product construction (only reachable
    /// product states are built).
    #[must_use]
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b)
    }

    /// Language union via the product construction.
    #[must_use]
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a || b)
    }

    /// Language complement (flips acceptance; the DFA is already complete).
    #[must_use]
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        for a in &mut out.accept {
            *a = !*a;
        }
        out
    }

    /// True if the language of `self` is empty (no reachable accept state).
    pub fn is_empty_language(&self) -> bool {
        !self.reachable().iter().any(|&s| self.accept[s as usize])
    }

    /// Reachable states from start, in BFS order.
    fn reachable(&self) -> Vec<u16> {
        let mut seen = vec![false; self.num_states()];
        let mut order = vec![self.start];
        seen[self.start as usize] = true;
        let mut i = 0;
        while i < order.len() {
            let s = order[i];
            i += 1;
            for c in 0..self.num_classes {
                let t = self.trans[s as usize * self.num_classes + c];
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    order.push(t);
                }
            }
        }
        order
    }

    fn product(&self, other: &Dfa, combine: fn(bool, bool) -> bool) -> Dfa {
        // Refined alphabet partition: a product class is a pair of classes.
        let mut pair_index: HashMap<(u8, u8), u8> = HashMap::new();
        let mut class_of = [0u8; 256];
        let mut pairs: Vec<(u8, u8)> = Vec::new();
        for b in 0u16..256 {
            let key = (self.class_of[b as usize], other.class_of[b as usize]);
            let id = *pair_index.entry(key).or_insert_with(|| {
                pairs.push(key);
                u8::try_from(pairs.len() - 1).expect("≤256 classes")
            });
            class_of[b as usize] = id;
        }
        let num_classes = pairs.len();

        let mut state_index: HashMap<(u16, u16), u16> = HashMap::new();
        let mut states: Vec<(u16, u16)> = vec![(self.start, other.start)];
        state_index.insert((self.start, other.start), 0);
        let mut trans: Vec<u16> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut i = 0;
        while i < states.len() {
            let (sa, sb) = states[i];
            accept.push(combine(self.accept[sa as usize], other.accept[sb as usize]));
            for &(ca, cb) in pairs.iter().take(num_classes) {
                let ta = self.step_class(sa, ca);
                let tb = other.step_class(sb, cb);
                let id = match state_index.get(&(ta, tb)) {
                    Some(&id) => id,
                    None => {
                        let id = u16::try_from(states.len()).expect("product DFA too large");
                        state_index.insert((ta, tb), id);
                        states.push((ta, tb));
                        id
                    }
                };
                trans.push(id);
            }
            i += 1;
        }
        Dfa::from_parts(class_of, num_classes, trans, accept, 0)
    }

    /// Merges identical transition-table columns (classes that became
    /// indistinguishable) and renumbers classes canonically by their lowest
    /// byte. Called by every constructor.
    #[must_use]
    fn normalized(self) -> Dfa {
        let n = self.num_states();
        // Signature of a class = its transition column.
        let mut col_index: HashMap<Vec<u16>, u8> = HashMap::new();
        let mut old_to_new: Vec<u8> = vec![0; self.num_classes];
        let mut new_cols: Vec<Vec<u16>> = Vec::new();
        for (c, slot) in old_to_new.iter_mut().enumerate() {
            let col: Vec<u16> = (0..n)
                .map(|s| self.trans[s * self.num_classes + c])
                .collect();
            *slot = *col_index.entry(col.clone()).or_insert_with(|| {
                new_cols.push(col);
                u8::try_from(new_cols.len() - 1).expect("≤256 classes")
            });
        }
        let num_classes = new_cols.len();
        let mut class_of = [0u8; 256];
        for b in 0..256 {
            class_of[b] = old_to_new[self.class_of[b] as usize];
        }
        let mut trans = vec![0u16; n * num_classes];
        for s in 0..n {
            for (c, col) in new_cols.iter().enumerate() {
                trans[s * num_classes + c] = col[s];
            }
        }
        Dfa {
            class_of,
            num_classes,
            trans,
            accept: self.accept,
            start: self.start,
        }
    }
}

impl fmt::Display for Dfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "dfa: {} states, {} classes, start s{}",
            self.num_states(),
            self.num_classes,
            self.start
        )?;
        for s in 0..self.num_states() as u16 {
            let marker = if self.is_accept(s) { "*" } else { " " };
            write!(f, " {marker}s{s}:")?;
            for c in 0..self.num_classes as u8 {
                write!(f, " {:?}->s{}", self.class_set(c), self.step_class(s, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Partitions the byte alphabet into equivalence classes with respect to a
/// set of [`ByteSet`]s: two bytes share a class iff they are members of
/// exactly the same sets. Returns `(class_of, num_classes, class_sets)`.
fn partition_alphabet(sets: &[&ByteSet]) -> ([u8; 256], usize, Vec<ByteSet>) {
    let mut sig_index: HashMap<Vec<bool>, u8> = HashMap::new();
    let mut class_of = [0u8; 256];
    let mut class_sets: Vec<ByteSet> = Vec::new();
    for b in 0u16..256 {
        let b = b as u8;
        let sig: Vec<bool> = sets.iter().map(|s| s.contains(b)).collect();
        let id = *sig_index.entry(sig).or_insert_with(|| {
            class_sets.push(ByteSet::new());
            u8::try_from(class_sets.len() - 1).expect("≤256 classes")
        });
        class_of[b as usize] = id;
        class_sets[id as usize].insert(b);
    }
    (class_of, class_sets.len(), class_sets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfa(pattern: &str) -> Dfa {
        Dfa::from_regex(&pattern.parse().expect("pattern parses"))
    }

    #[test]
    fn matches_nfa_reference() {
        let patterns = [
            "abc",
            "(ab|c)*",
            "a+b?c*",
            "[0-9]{1,3}",
            "(3[5-9])|([4-9][0-9])|([1-9][0-9]{2,})",
        ];
        let inputs: Vec<&[u8]> = vec![
            b"", b"a", b"ab", b"abc", b"c", b"cab", b"35", b"34", b"120", b"0", b"999", b"aaa",
        ];
        for p in patterns {
            let d = dfa(p);
            let n = Nfa::from_regex(&p.parse().unwrap());
            for &i in &inputs {
                assert_eq!(d.accepts(i), n.accepts(i), "pattern {p} input {i:?}");
            }
        }
    }

    #[test]
    fn class_compression_is_tight() {
        // [0-9]+ needs exactly 2 classes: digits and everything else.
        let d = dfa("[0-9]+");
        assert_eq!(d.num_classes(), 2);
        let digit_class = d.class_of(b'5');
        assert_eq!(d.class_of(b'0'), digit_class);
        assert_ne!(d.class_of(b'x'), digit_class);
        assert_eq!(d.class_set(digit_class), ByteSet::from_range(b'0', b'9'));
    }

    #[test]
    fn completeness() {
        let d = dfa("ab");
        // Every state must have a transition for every byte (run anything).
        let s = d.run(b"zzz\xff\x00");
        assert!(!d.is_accept(s));
    }

    #[test]
    fn intersection() {
        // [0-9]+ ∩ .{2} = two digits.
        let a = dfa("[0-9]+");
        let b = dfa(".{2}");
        let i = a.intersect(&b).minimized();
        assert!(i.accepts(b"42"));
        assert!(!i.accepts(b"4"));
        assert!(!i.accepts(b"421"));
        assert!(!i.accepts(b"4x"));
    }

    #[test]
    fn union() {
        let a = dfa("cat");
        let b = dfa("dog");
        let u = a.union(&b).minimized();
        assert!(u.accepts(b"cat"));
        assert!(u.accepts(b"dog"));
        assert!(!u.accepts(b"cow"));
    }

    #[test]
    fn complement_total() {
        let d = dfa("a+");
        let c = d.complement();
        assert!(!c.accepts(b"aa"));
        assert!(c.accepts(b""));
        assert!(c.accepts(b"b"));
    }

    #[test]
    fn empty_language_detection() {
        let d = Dfa::from_regex(&Regex::Empty);
        assert!(d.is_empty_language());
        let a = dfa("a");
        let b = dfa("b");
        assert!(a.intersect(&b).is_empty_language());
        assert!(!a.union(&b).is_empty_language());
    }

    #[test]
    fn dense_table_equivalent_to_step_on_all_pairs() {
        for pattern in ["abc", "(ab|c)*", "[0-9]{1,3}", ".*temperature", "a+b?c*"] {
            let d = dfa(pattern).minimized();
            let table = d.dense_table();
            assert_eq!(table.len(), d.num_states() * 256);
            for s in 0..d.num_states() as u16 {
                for b in 0u16..256 {
                    let word = table[s as usize * 256 + b as usize];
                    let next = word & !DENSE_ACCEPT_BIT;
                    assert_eq!(next, d.step(s, b as u8), "pattern {pattern} ({s},{b})");
                    assert_eq!(
                        word & DENSE_ACCEPT_BIT != 0,
                        d.is_accept(next),
                        "pattern {pattern} accept bit ({s},{b})"
                    );
                }
            }
            let start = d.dense_start();
            assert_eq!(start & !DENSE_ACCEPT_BIT, d.start());
            assert_eq!(start & DENSE_ACCEPT_BIT != 0, d.is_accept(d.start()));
        }
    }

    #[test]
    fn dense_table_run_matches_accepts() {
        let d = dfa(".*cat").minimized();
        let table = d.dense_table();
        let mut word = d.dense_start();
        let mut fired = false;
        for &b in b"concatenate" {
            word = table[(word & !DENSE_ACCEPT_BIT) as usize * 256 + b as usize];
            fired |= word & DENSE_ACCEPT_BIT != 0;
        }
        assert!(fired, "dense walk sees the embedded needle");
    }

    #[test]
    fn display_shows_states() {
        let d = dfa("a").minimized();
        let s = d.to_string();
        assert!(s.contains("states"));
        assert!(s.contains("->"));
    }
}

//! DFA → RTL elaboration.
//!
//! Turns a [`Dfa`] into the synchronous circuit the paper synthesises:
//! a binary-encoded state register, shared byte-class comparators, one
//! product term per (state, class) transition pair, and a combinational
//! `accept` output. The byte-class sharing is what keeps number-filter
//! DFAs in the tens of LUTs.

use crate::dfa::Dfa;
use rfjson_rtl::components::{bits_for, byte_in_set, eq_const, or_reduce};
use rfjson_rtl::netlist::{Netlist, NodeId};

/// Handles to the signals of an elaborated DFA.
#[derive(Debug, Clone)]
pub struct DfaPorts {
    /// High when the *current* state (before the coming clock edge) is
    /// accepting.
    pub accept: NodeId,
    /// High when the state the automaton is stepping into this cycle
    /// (after the `advance` mux, before `reset`) is accepting — i.e. the
    /// verdict *including* the byte currently on the wire.
    pub accept_next: NodeId,
    /// Binary-encoded state register bits (LSB first).
    pub state: Vec<NodeId>,
}

/// Elaborates `dfa` into `n`.
///
/// * `byte` — 8-bit input word (one byte per cycle);
/// * `advance` — when high, the automaton steps on this byte; when low it
///   holds its state (the number filter gates stepping on token bytes);
/// * `reset` — synchronous return to the start state, dominating `advance`.
///
/// Returns the port bundle. All generated node names are unprefixed; use
/// separate netlists per block or rely on node ids.
pub fn elaborate_dfa(
    n: &mut Netlist,
    dfa: &Dfa,
    byte: &[NodeId],
    advance: NodeId,
    reset: NodeId,
) -> DfaPorts {
    assert_eq!(byte.len(), 8, "byte port must be 8 bits");
    let num_states = dfa.num_states();
    let width = bits_for(num_states.saturating_sub(1) as u64);

    // State encoding: the most-targeted state (usually the dead state of a
    // number filter) gets code 0, so the bulk of the transition products
    // vanish — next-state bits only need terms for transitions into states
    // with non-zero codes. The start state's code becomes the register
    // init value and the synchronous-reset constant.
    let mut indegree = vec![0usize; num_states];
    for s in 0..num_states as u16 {
        for c in 0..dfa.num_classes() as u8 {
            indegree[dfa.step_class(s, c) as usize] += 1;
        }
    }
    let mut by_indegree: Vec<u16> = (0..num_states as u16).collect();
    by_indegree.sort_by_key(|&s| std::cmp::Reverse(indegree[s as usize]));
    let mut code_of = vec![0u64; num_states];
    for (code, &s) in by_indegree.iter().enumerate() {
        code_of[s as usize] = code as u64;
    }
    let encode = |s: u16| code_of[s as usize];
    let start_code = encode(dfa.start());
    let state: Vec<NodeId> = (0..width)
        .map(|bit| n.dff_placeholder((start_code >> bit) & 1 == 1))
        .collect();

    // Shared class-match signals; the widest class (the "everything else"
    // byte class) is derived as the complement of the rest — the classes
    // partition the alphabet.
    let num_classes = dfa.num_classes();
    let widest = (0..num_classes as u8)
        .max_by_key(|&c| dfa.class_set(c).ranges().len())
        .expect("at least one class");
    let mut class_match: Vec<Option<NodeId>> = vec![None; num_classes];
    for c in 0..num_classes as u8 {
        if c != widest {
            let set = dfa.class_set(c);
            class_match[c as usize] = Some(byte_in_set(n, byte, &set));
        }
    }
    let others: Vec<NodeId> = class_match.iter().flatten().copied().collect();
    let any_other = or_reduce(n, &others);
    class_match[widest as usize] = Some(n.not(any_other));
    let class_match: Vec<NodeId> = class_match
        .into_iter()
        .map(|c| c.expect("all classes built"))
        .collect();

    // State decode.
    let state_is: Vec<NodeId> = (0..num_states as u16)
        .map(|s| eq_const(n, &state, encode(s)))
        .collect();

    // Next-state logic: for each source state, group classes by target and
    // emit one product per (state, live target).
    let mut next = vec![Vec::new(); width];
    for s in 0..num_states as u16 {
        let mut by_target: std::collections::HashMap<u64, Vec<NodeId>> =
            std::collections::HashMap::new();
        for c in 0..dfa.num_classes() as u8 {
            let t = encode(dfa.step_class(s, c));
            if t == 0 {
                continue; // all-zero target needs no products
            }
            by_target
                .entry(t)
                .or_default()
                .push(class_match[c as usize]);
        }
        let mut targets: Vec<(u64, Vec<NodeId>)> = by_target.into_iter().collect();
        targets.sort_by_key(|(t, _)| *t);
        for (t, classes) in targets {
            let class_any = or_reduce(n, &classes);
            let product = n.and_gate(state_is[s as usize], class_any);
            for (bit, terms) in next.iter_mut().enumerate() {
                if (t >> bit) & 1 == 1 {
                    terms.push(product);
                }
            }
        }
    }
    let mut held_word = Vec::with_capacity(width);
    for (bit, terms) in next.into_iter().enumerate() {
        let stepped = or_reduce(n, &terms);
        let held = n.mux(advance, stepped, state[bit]);
        held_word.push(held);
        let start_bit = n.constant((start_code >> bit) & 1 == 1);
        let next_bit = n.mux(reset, start_bit, held);
        n.connect_dff(state[bit], next_bit);
    }

    // Accept = current state is any accepting state.
    let acc_terms: Vec<NodeId> = (0..num_states as u16)
        .filter(|&s| dfa.is_accept(s))
        .map(|s| state_is[s as usize])
        .collect();
    let accept = or_reduce(n, &acc_terms);

    // Accept-next = the post-step state is accepting (combinational).
    let acc_next_terms: Vec<NodeId> = (0..num_states as u16)
        .filter(|&s| dfa.is_accept(s))
        .map(|s| eq_const(n, &held_word, encode(s)))
        .collect();
    let accept_next = or_reduce(n, &acc_next_terms);

    DfaPorts {
        accept,
        accept_next,
        state,
    }
}

/// Wraps [`elaborate_dfa`] in a standalone netlist with ports
/// `byte[0..8]`, `advance`, `reset` → output `accept`.
pub fn dfa_to_netlist(dfa: &Dfa, name: &str) -> Netlist {
    let mut n = Netlist::new(name);
    let byte = n.input_word("byte", 8);
    let advance = n.input("advance");
    let reset = n.input("reset");
    let ports = elaborate_dfa(&mut n, dfa, &byte, advance, reset);
    n.output("accept", ports.accept);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::NumberBounds;
    use crate::regex::Regex;
    use rfjson_rtl::{BitVec, Simulator};

    /// Streams `input` through an elaborated DFA one byte per cycle and
    /// returns whether the final state is accepting.
    fn hw_accepts(dfa: &Dfa, input: &[u8]) -> bool {
        let n = dfa_to_netlist(dfa, "dut");
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input("advance", true).unwrap();
        sim.set_input("reset", false).unwrap();
        for &b in input {
            sim.set_input_word("byte", &BitVec::from_u64(u64::from(b), 8))
                .unwrap();
            sim.clock();
        }
        sim.output("accept").unwrap()
    }

    #[test]
    fn hardware_matches_software_simple() {
        let dfa = Dfa::from_regex(&"ab*c".parse::<Regex>().unwrap()).minimized();
        for input in [&b"ac"[..], b"abbc", b"abc", b"a", b"", b"xyz", b"abcx"] {
            assert_eq!(hw_accepts(&dfa, input), dfa.accepts(input), "{input:?}");
        }
    }

    #[test]
    fn hardware_matches_software_range() {
        let dfa = NumberBounds::int_range(12, 49).to_dfa_exact();
        for v in 0..100u32 {
            let s = v.to_string();
            assert_eq!(
                hw_accepts(&dfa, s.as_bytes()),
                dfa.accepts(s.as_bytes()),
                "value {v}"
            );
        }
    }

    #[test]
    fn advance_gates_stepping() {
        let dfa = Dfa::from_regex(&"ab".parse::<Regex>().unwrap()).minimized();
        let n = dfa_to_netlist(&dfa, "dut");
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input("reset", false).unwrap();
        // Feed 'a' with advance, then junk without advance, then 'b'.
        sim.set_input("advance", true).unwrap();
        sim.set_input_word("byte", &BitVec::from_u64(u64::from(b'a'), 8))
            .unwrap();
        sim.clock();
        sim.set_input("advance", false).unwrap();
        sim.set_input_word("byte", &BitVec::from_u64(u64::from(b'z'), 8))
            .unwrap();
        sim.clock();
        sim.clock();
        sim.set_input("advance", true).unwrap();
        sim.set_input_word("byte", &BitVec::from_u64(u64::from(b'b'), 8))
            .unwrap();
        sim.clock();
        assert!(
            sim.output("accept").unwrap(),
            "junk was ignored while advance=0"
        );
    }

    #[test]
    fn reset_returns_to_start() {
        let dfa = Dfa::from_regex(&"ab".parse::<Regex>().unwrap()).minimized();
        let n = dfa_to_netlist(&dfa, "dut");
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input("advance", true).unwrap();
        sim.set_input("reset", false).unwrap();
        for &b in b"ab" {
            sim.set_input_word("byte", &BitVec::from_u64(u64::from(b), 8))
                .unwrap();
            sim.clock();
        }
        assert!(sim.output("accept").unwrap());
        sim.set_input("reset", true).unwrap();
        sim.clock();
        sim.set_input("reset", false).unwrap();
        assert!(!sim.output("accept").unwrap());
        // And the automaton works again after reset.
        for &b in b"ab" {
            sim.set_input_word("byte", &BitVec::from_u64(u64::from(b), 8))
                .unwrap();
            sim.clock();
        }
        assert!(sim.output("accept").unwrap());
    }

    #[test]
    fn accept_next_sees_current_byte() {
        // accept_next must fire in the same cycle the final byte arrives,
        // one cycle before the registered accept.
        let dfa = Dfa::from_regex(&"ab".parse::<Regex>().unwrap()).minimized();
        let mut n = Netlist::new("dut");
        let byte = n.input_word("byte", 8);
        let advance = n.input("advance");
        let reset = n.input("reset");
        let ports = elaborate_dfa(&mut n, &dfa, &byte, advance, reset);
        n.output("accept", ports.accept);
        n.output("accept_next", ports.accept_next);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input("advance", true).unwrap();
        sim.set_input("reset", false).unwrap();
        sim.set_input_word("byte", &BitVec::from_u64(u64::from(b'a'), 8))
            .unwrap();
        sim.clock();
        sim.set_input_word("byte", &BitVec::from_u64(u64::from(b'b'), 8))
            .unwrap();
        sim.settle();
        assert!(!sim.output("accept").unwrap(), "registered accept lags");
        assert!(
            sim.output("accept_next").unwrap(),
            "combinational verdict now"
        );
        sim.clock();
        assert!(sim.output("accept").unwrap());
    }

    #[test]
    fn state_register_width_is_logarithmic() {
        // 12-or-so state DFA needs ceil(log2(states)) flip-flops — the
        // paper's argument for why DFA matchers stay small in registers.
        let dfa = Dfa::from_regex(&Regex::literal(b"temperature")).minimized();
        let n = dfa_to_netlist(&dfa, "dut");
        let width = rfjson_rtl::components::bits_for(dfa.num_states() as u64 - 1);
        assert_eq!(n.num_dffs(), width);
        assert!(width <= 4, "12 states fit 4 bits");
    }
}

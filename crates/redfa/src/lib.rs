//! # rfjson-redfa — regular expressions, DFAs and numeric range automata
//!
//! The paper's number-range raw filter (§III-B, Fig. 2) works in two steps:
//!
//! 1. derive a **regular expression** from a value comparison such as
//!    `i ≥ 35` — digit-by-digit case analysis plus a "more digits" clause;
//! 2. convert the regex into a **minimised DFA** that is synthesised onto
//!    the FPGA and evaluated at every number-token boundary.
//!
//! This crate implements that entire pipeline from scratch:
//!
//! * [`regex`] — a byte-class regex AST with a parser and pretty-printer;
//! * [`nfa`] — Thompson construction;
//! * [`dfa`] — subset construction with byte-class compression, plus the
//!   product constructions (intersection/union) used to combine a lower and
//!   an upper bound into the paper's single range automaton;
//! * [`minimize`] — Hopcroft minimisation;
//! * [`range`] — [`range::Decimal`] bounds and the Fig. 2 derivation for
//!   integers *and* decimals, including the approximate exponent rule
//!   (any token containing a digit followed by `e`/`E` is accepted, so no
//!   false negatives are possible);
//! * [`elaborate`] — DFA → `rfjson-rtl` netlist (binary state encoding,
//!   shared byte-class comparators), the hardware form whose LUT cost the
//!   evaluation tables report.
//!
//! # Example
//!
//! The running example of the paper, `i ≥ 35`:
//!
//! ```
//! use rfjson_redfa::range::{Decimal, ge_regex};
//! use rfjson_redfa::dfa::Dfa;
//!
//! let bound: Decimal = "35".parse()?;
//! let regex = ge_regex(&bound);
//! let dfa = Dfa::from_regex(&regex).minimized();
//! assert!(dfa.accepts(b"35"));
//! assert!(dfa.accepts(b"36"));
//! assert!(dfa.accepts(b"350"));
//! assert!(!dfa.accepts(b"34"));
//! assert!(!dfa.accepts(b"9"));
//! # Ok::<(), rfjson_redfa::range::ParseDecimalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dfa;
pub mod dot;
pub mod elaborate;
pub mod minimize;
pub mod nfa;
pub mod range;
pub mod regex;

pub use dfa::{Dfa, DENSE_ACCEPT_BIT};
pub use range::{Decimal, NumberBounds};
pub use regex::Regex;

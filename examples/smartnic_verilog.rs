//! SmartNIC deployment flow (§IV-B, Fig. 4 right-hand option): choose a
//! Pareto-optimal raw filter for the Taxi query, elaborate it to RTL,
//! verify it against the software model, and emit synthesizable Verilog —
//! everything a SmartNIC build needs short of vendor place-and-route.
//!
//! Run with: `cargo run -p rfjson-core --example smartnic_verilog --release`

use rfjson_core::cost::exact_cost;
use rfjson_core::design::{explore, pareto, ExploreOptions};
use rfjson_core::elaborate::elaborate_filter;
use rfjson_core::eval::measure;
use rfjson_riotbench::{taxi, Query};
use rfjson_rtl::verilog::to_verilog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== SmartNIC flow: query -> Pareto choice -> RTL -> Verilog ==\n");
    let dataset = taxi::generate(42, 1500);
    let query = Query::qt();
    println!("query: {query}\n");

    // Explore a compact design space and pick the cheapest configuration
    // under an FPR budget of 10 %.
    let opts = ExploreOptions {
        max_records: 800,
        ..ExploreOptions::default()
    };
    let points = explore(&query, &dataset, &opts);
    let front = pareto(&points);
    let budget = 0.10;
    let choice = front
        .iter()
        .find(|p| p.fpr <= budget)
        .unwrap_or_else(|| front.last().expect("front is non-empty"));
    println!(
        "chosen for FPR <= {budget}: {}\n  (estimated {} LUTs, measured FPR {:.3})\n",
        choice.notation(&query),
        choice.luts,
        choice.fpr
    );

    // Exact resource report + verification on fresh data.
    let expr = choice.expr(&query);
    let report = exact_cost(&expr);
    let fresh = taxi::generate(4242, 1000);
    let m = measure(&expr, &fresh, &query);
    println!("exact mapping:   {report}");
    println!("fresh-data test: {m}");
    assert_eq!(m.false_negatives, 0);

    // Emit the Verilog a SmartNIC build would synthesise.
    let netlist = elaborate_filter(&expr, "qt_raw_filter");
    let verilog = to_verilog(&netlist);
    let path = "qt_raw_filter.v";
    std::fs::write(path, &verilog)?;
    let lines = verilog.lines().count();
    println!("\nwrote {path}: {lines} lines of structural Verilog");
    for line in verilog.lines().take(8) {
        println!("  | {line}");
    }
    println!("  | ...");
    println!("\nPipeline: NIC ingress -> qt_raw_filter (1 byte/cycle) -> DMA match");
    println!("signals -> host CPU parses only surviving records.");
    Ok(())
}

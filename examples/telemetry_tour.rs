//! Tour of the telemetry subsystem: run the pipeline, snapshot the
//! registry, diff snapshots, and read the conservation invariants.
//!
//! ```text
//! cargo run --example telemetry_tour
//! ```
//!
//! Everything here is `rfjson-telemetry`'s public surface: global
//! counters the engines/runtime flush into, [`Snapshot`] as the stable
//! JSON export, and [`Snapshot::delta`] for before/after windows.
//! Compile with `--no-default-features --features telemetry-off` and the
//! same program runs with every metric reading zero.

use rfjson_core::{Expr, IngestLimits};
use rfjson_riotbench::{smartcity_corpus, Query};
use rfjson_runtime::{MultiShardedRunner, ShardedRunner};
use rfjson_telemetry::Snapshot;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "telemetry compiled {}\n",
        if rfjson_telemetry::ENABLED {
            "IN (default)"
        } else {
            "OUT (feature telemetry-off): every value below reads zero"
        }
    );

    // A small deterministic RiotBench corpus and the paper's QS0 query.
    let corpus = smartcity_corpus(200);
    let stream = corpus.stream();
    let expr = rfjson_core::query::query_to_exprs(&Query::qs0(), 1)?;

    // --- Window 1: sharded single-query filtering -------------------
    let before = rfjson_telemetry::registry().snapshot();
    let mut runner: ShardedRunner<rfjson_core::Engine> = ShardedRunner::with_shards(&expr, 3);
    let verdicts = runner.filter_stream_verdicts(&stream, IngestLimits::UNLIMITED)?;
    let window = rfjson_telemetry::registry().snapshot().delta(&before);

    println!("--- one sharded pass over {} records ---", verdicts.len());
    print_counters(&window, &["engine.", "framing.", "runtime."]);

    // The conservation law the invariant tests pin: every record framed
    // is reported exactly once.
    let reported = window.counter("runtime.matched")
        + window.counter("runtime.unmatched")
        + window.counter("runtime.skipped.too_long")
        + window.counter("runtime.skipped.record_limit");
    println!(
        "\nconservation: framing.records = {}, runtime verdicts = {}",
        window.counter("framing.records"),
        reported
    );
    assert!(!rfjson_telemetry::ENABLED || reported == window.counter("runtime.records"));

    // --- Window 2: a fused multi-query batch ------------------------
    let before = rfjson_telemetry::registry().snapshot();
    let batch: Vec<Expr> = vec![
        expr.clone(),
        rfjson_core::query::query_to_exprs(&Query::qs1(), 1)?,
    ];
    let mut multi: MultiShardedRunner<rfjson_core::MultiEngine> =
        MultiShardedRunner::with_shards(&batch, 2);
    let batch_verdicts = multi.filter_stream_verdicts(&stream, IngestLimits::UNLIMITED)?;
    let window = rfjson_telemetry::registry().snapshot().delta(&before);

    println!(
        "\n--- one fused pass: {} queries x {} records ---",
        batch.len(),
        batch_verdicts.num_records()
    );
    print_counters(&window, &["multi.", "framing.", "runtime."]);

    // --- The export surface -----------------------------------------
    println!("\n--- snapshot JSON (runtime.* only) ---");
    let full = rfjson_telemetry::registry().snapshot();
    println!("{}", full.filtered(&["runtime."]).to_json());
    Ok(())
}

/// Prints the counters of `snap` under any of `prefixes`, sorted.
fn print_counters(snap: &Snapshot, prefixes: &[&str]) {
    let filtered = snap.filtered(prefixes);
    for (name, value) in &filtered.counters {
        println!("  {name:<32} {value}");
    }
    if filtered.counters.is_empty() {
        println!("  (no counters recorded — telemetry-off build)");
    }
}

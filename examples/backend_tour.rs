//! Backend tour: the same query executed by every [`FilterBackend`] —
//! the cosim-faithful model, the flat batch engine, the gate-level RTL
//! co-simulation, and the sharded parallel runtime — producing the same
//! per-record decisions from the same interface. A final leg fuses a
//! whole query batch into one [`MultiEngine`] scan and checks it against
//! the single-query reference.
//!
//! ```sh
//! cargo run --release --example backend_tour
//! ```

use rfjson_core::cosim::CosimBackend;
use rfjson_core::multi::{MultiBackend, MultiEngine};
use rfjson_core::{CompiledFilter, Engine, Expr, FilterBackend, IngestLimits};
use rfjson_riotbench::smartcity_corpus;
use rfjson_runtime::ShardedRunner;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Listing 2's query: { s1("temperature") & v(0.7 <= f <= 35.1) }
    let expr = Expr::context([
        Expr::substring(b"temperature", 1)?,
        Expr::float_range("0.7", "35.1")?,
    ]);

    // A small seeded SmartCity stream (cosim is gate-level and slow, so
    // keep the tour corpus modest; the software paths handle MBs).
    let dataset = smartcity_corpus(40);
    let stream = dataset.stream();

    println!("query: {expr}");
    println!(
        "stream: {} records, {} bytes\n",
        dataset.len(),
        stream.len()
    );

    // Any backend behind the one trait...
    let mut backends: Vec<Box<dyn FilterBackend>> = vec![
        Box::new(CompiledFilter::compile(&expr)),
        Box::new(Engine::compile(&expr)),
        Box::new(CosimBackend::compile(&expr)),
    ];

    let mut reference: Option<Vec<bool>> = None;
    println!("{:<8} {:>10} {:>12}", "backend", "accepted", "time");
    for backend in &mut backends {
        let t = Instant::now();
        let decisions = backend.filter_stream(&stream);
        let elapsed = t.elapsed();
        println!(
            "{:<8} {:>7}/{:<3} {:>10.2?}",
            backend.name(),
            decisions.iter().filter(|d| **d).count(),
            decisions.len(),
            elapsed
        );
        match &reference {
            None => reference = Some(decisions),
            Some(r) => assert_eq!(&decisions, r, "{} diverged", backend.name()),
        }
    }

    // ...and the parallel runtime replicates any of them across threads
    // (here: the engine, one lane per core), same decisions in order.
    let mut runner: ShardedRunner<Engine> = ShardedRunner::new(&expr);
    let t = Instant::now();
    let decisions = runner.filter_stream(&stream);
    let elapsed = t.elapsed();
    println!(
        "{:<8} {:>7}/{:<3} {:>10.2?}   ({} shard(s))",
        "sharded",
        decisions.iter().filter(|d| **d).count(),
        decisions.len(),
        elapsed,
        runner.plan(&stream).len()
    );
    assert_eq!(Some(decisions), reference, "sharded runner diverged");

    // Fused batch: several resident queries share one scan. The tour
    // query rides along as lane 0, so its fused verdicts must equal the
    // single-query reference computed above.
    let batch = vec![
        expr.clone(),
        Expr::context([
            Expr::substring(b"temperature", 1)?,
            Expr::float_range("30.0", "99.0")?,
        ]),
        Expr::context([Expr::window(b"light")?, Expr::int_range(0, 500)]),
    ];
    let mut fused = MultiEngine::compile_batch(&batch);
    let stats = fused.share_stats();
    println!(
        "\nfused batch: {} queries, {} units demanded, {} instantiated ({} shared)",
        batch.len(),
        stats.total_units(),
        stats.pool.total(),
        stats.shared_units()
    );
    let t = Instant::now();
    let verdicts = fused.filter_stream_verdicts(&stream, IngestLimits::UNLIMITED);
    let elapsed = t.elapsed();
    for (q, query) in batch.iter().enumerate() {
        println!(
            "  lane {q}: {:>3}/{} matched  `{query}`",
            verdicts.count_matches(q),
            verdicts.num_records()
        );
    }
    println!("  one scan: {elapsed:.2?}");
    let lane0: Vec<bool> = (0..verdicts.num_records())
        .map(|r| verdicts.matched(r, 0))
        .collect();
    assert_eq!(Some(lane0), reference, "fused lane 0 diverged");

    println!("\nall execution paths agree on every record decision");
    Ok(())
}

//! Backend tour: the same query executed by every [`FilterBackend`] —
//! the cosim-faithful model, the flat batch engine, the gate-level RTL
//! co-simulation, and the sharded parallel runtime — producing the same
//! per-record decisions from the same interface.
//!
//! ```sh
//! cargo run --release --example backend_tour
//! ```

use rfjson_core::cosim::CosimBackend;
use rfjson_core::{CompiledFilter, Engine, Expr, FilterBackend};
use rfjson_riotbench::smartcity_corpus;
use rfjson_runtime::ShardedRunner;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Listing 2's query: { s1("temperature") & v(0.7 <= f <= 35.1) }
    let expr = Expr::context([
        Expr::substring(b"temperature", 1)?,
        Expr::float_range("0.7", "35.1")?,
    ]);

    // A small seeded SmartCity stream (cosim is gate-level and slow, so
    // keep the tour corpus modest; the software paths handle MBs).
    let dataset = smartcity_corpus(40);
    let stream = dataset.stream();

    println!("query: {expr}");
    println!(
        "stream: {} records, {} bytes\n",
        dataset.len(),
        stream.len()
    );

    // Any backend behind the one trait...
    let mut backends: Vec<Box<dyn FilterBackend>> = vec![
        Box::new(CompiledFilter::compile(&expr)),
        Box::new(Engine::compile(&expr)),
        Box::new(CosimBackend::compile(&expr)),
    ];

    let mut reference: Option<Vec<bool>> = None;
    println!("{:<8} {:>10} {:>12}", "backend", "accepted", "time");
    for backend in &mut backends {
        let t = Instant::now();
        let decisions = backend.filter_stream(&stream);
        let elapsed = t.elapsed();
        println!(
            "{:<8} {:>7}/{:<3} {:>10.2?}",
            backend.name(),
            decisions.iter().filter(|d| **d).count(),
            decisions.len(),
            elapsed
        );
        match &reference {
            None => reference = Some(decisions),
            Some(r) => assert_eq!(&decisions, r, "{} diverged", backend.name()),
        }
    }

    // ...and the parallel runtime replicates any of them across threads
    // (here: the engine, one lane per core), same decisions in order.
    let mut runner: ShardedRunner<Engine> = ShardedRunner::new(&expr);
    let t = Instant::now();
    let decisions = runner.filter_stream(&stream);
    let elapsed = t.elapsed();
    println!(
        "{:<8} {:>7}/{:<3} {:>10.2?}   ({} shard(s))",
        "sharded",
        decisions.iter().filter(|d| **d).count(),
        decisions.len(),
        elapsed,
        runner.plan(&stream).len()
    );
    assert_eq!(Some(decisions), reference, "sharded runner diverged");

    println!("\nall execution paths agree on every record decision");
    Ok(())
}

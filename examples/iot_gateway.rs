//! IoT gateway scenario (§IV-B): a SmartCity sensor stream arrives at a
//! gateway; seven parallel raw-filter lanes drop non-matching records
//! before the CPU parses the survivors.
//!
//! Run with: `cargo run -p rfjson-core --example iot_gateway --release`

use rfjson_core::arch::RawFilterSystem;
use rfjson_core::query::query_to_exprs;
use rfjson_jsonstream::parse;
use rfjson_riotbench::{smartcity, Query};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== IoT gateway: filter before you parse ==\n");

    // A day's worth of sensor batches (scaled down for the example).
    let dataset = smartcity::generate(7, 20_000);
    let stream = dataset.stream();
    let query = Query::qs1();
    println!(
        "stream:  {} records, {:.1} MB",
        dataset.len(),
        stream.len() as f64 / 1e6
    );
    println!("query:   {query}\n");

    // The raw filter: every attribute as a structural {s1 & v} pair.
    let expr = query_to_exprs(&query, 1)?;
    println!("raw filter: {expr}\n");

    // 1) Baseline: parse everything, then evaluate the query.
    let t0 = Instant::now();
    let mut baseline_hits = 0usize;
    for record in dataset.records() {
        let v = parse(record)?;
        if query.matches(&v) {
            baseline_hits += 1;
        }
    }
    let parse_all = t0.elapsed();

    // 2) Gateway: raw filter in the PL, parse only the survivors.
    let mut system = RawFilterSystem::new(&expr, 7);
    let t1 = Instant::now();
    let (matches, report) = system.process(&stream);
    let filter_time = t1.elapsed();
    let t2 = Instant::now();
    let mut gateway_hits = 0usize;
    for (record, &keep) in dataset.records().iter().zip(&matches) {
        if keep {
            let v = parse(record)?;
            if query.matches(&v) {
                gateway_hits += 1;
            }
        }
    }
    let parse_survivors = t2.elapsed();

    assert_eq!(
        baseline_hits, gateway_hits,
        "no false negatives: results identical"
    );

    let survivors = matches.iter().filter(|m| **m).count();
    println!("hardware model: {report}");
    println!(
        "                {} of {} records survive ({:.1} % filtered away)",
        survivors,
        dataset.len(),
        100.0 * (1.0 - survivors as f64 / dataset.len() as f64)
    );
    println!();
    println!("CPU time, parse everything:      {parse_all:?}");
    println!(
        "CPU time, parse survivors only:  {parse_survivors:?}  (+ {filter_time:?} software-filter time)"
    );
    let speedup = parse_all.as_secs_f64() / parse_survivors.as_secs_f64();
    println!("parser workload reduction:       {speedup:.1}x");
    println!("\nresults identical: {baseline_hits} matching records either way.");
    Ok(())
}

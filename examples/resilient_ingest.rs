//! Resilient ingest walkthrough: the fault-tolerance layer end to end —
//! fallible construction, record quarantine under [`IngestLimits`], and
//! the degradation ladder (engine lane → model retry → structured
//! error) exercised with an injected lane panic.
//!
//! ```sh
//! cargo run --release --example resilient_ingest
//! ```

use rfjson_core::{Engine, Expr, FilterBackend};
use rfjson_runtime::fault::{
    silence_injected_panics, FaultKind, FaultPlan, FaultyBackend, Trigger,
};
use rfjson_runtime::{IngestLimits, ShardedRunner, Verdict};

fn main() {
    // ── 1. Fallible construction ───────────────────────────────────
    // User-supplied queries go through `try_*`: an ill-formed
    // expression is an error value, never a crash.
    let bad = Expr::And(vec![]);
    match ShardedRunner::<Engine>::try_new(&bad) {
        Ok(_) => unreachable!("an empty AND is ill-formed"),
        Err(e) => println!("rejected bad query   : {e}"),
    }

    let expr = Expr::and([Expr::substring(b"temperature", 1).unwrap(), {
        Expr::int_range(0, 40)
    }]);
    let mut runner: ShardedRunner<Engine> =
        ShardedRunner::try_with_shards(&expr, 4).expect("well-formed query");
    println!("accepted query       : {expr}\n");

    // ── 2. Record quarantine ───────────────────────────────────────
    // A stream with one absurdly long record: under IngestLimits it is
    // skipped-and-reported, and the rest of the stream is unaffected.
    let long = format!(
        "{{\"n\":\"temperature\",\"pad\":\"{}\",\"v\":21}}",
        "x".repeat(512)
    );
    let stream =
        format!("{{\"n\":\"temperature\",\"v\":21}}\n{long}\n{{\"n\":\"temperature\",\"v\":99}}\n");
    let limits = IngestLimits::max_record_bytes(128);
    let verdicts = runner
        .filter_stream_verdicts(stream.as_bytes(), limits)
        .expect("no lane faults here");
    for (i, v) in verdicts.iter().enumerate() {
        println!("record {i}: {v}");
    }
    let skipped = verdicts.iter().filter(|v| v.decision().is_none()).count();
    println!(
        "quarantined          : {skipped} of {} records\n",
        verdicts.len()
    );
    assert_eq!(verdicts[0], Verdict::Match);
    assert!(matches!(verdicts[1], Verdict::Skipped(_)));
    assert_eq!(verdicts[2], Verdict::NoMatch);

    // ── 3. Panic isolation + graceful degradation ──────────────────
    // Arm a deterministic fault: any lane consuming the poison byte
    // 0x07 panics mid-stream. The runner catches it on the shard
    // thread, retries that shard serially on the reference model
    // backend, and the stream completes with identical decisions.
    silence_injected_panics();
    let armed = FaultPlan::new(Trigger::OnByteValue(0x07), FaultKind::Panic).arm();
    let poisoned: &[u8] =
        b"{\"n\":\"temperature\",\"v\":3}\n{\"n\":\"temperature\",\"tag\":\"\x07\",\"v\":7}\n{\"n\":\"temperature\",\"v\":88}\n";
    let serial = Engine::compile(&expr).filter_stream(poisoned);
    let mut faulty_runner: ShardedRunner<FaultyBackend<Engine>> =
        ShardedRunner::try_with_shards(&expr, 3).expect("well-formed query");
    let decisions = faulty_runner
        .try_filter_stream(poisoned)
        .expect("single fault absorbed by the model retry");
    println!("injected lane panic  : absorbed (decisions {decisions:?})");
    assert_eq!(decisions, serial, "identical to the serial path");
    drop(armed);

    println!("degradation ladder   : engine lane -> model retry -> RuntimeError::ShardFailed");
    println!("process survived every fault. done.");
}

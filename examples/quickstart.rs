//! Quickstart: the paper's running example.
//!
//! Builds the raw filter for Listing 2's query
//! `$.e[?(@.n=="temperature" & @.v ≥ 0.7 & @.v ≤ 35.1)]` and runs it over
//! Listing 1's record, showing why structural awareness matters.
//!
//! Run with: `cargo run -p rfjson-core --example quickstart`

use rfjson_core::cost::exact_cost;
use rfjson_core::evaluator::CompiledFilter;
use rfjson_core::expr::Expr;
use rfjson_core::FilterBackend;

const LISTING1: &[u8] = br#"{"e":[{"v":"35.2","u":"far","n":"temperature"},{"v":"12","u":"per","n":"humidity"},{"v":"713","u":"per","n":"light"},{"v":"305.01","u":"per","n":"dust"},{"v":"20","u":"per","n":"airquality_raw"}],"bt":1422748800000}"#;

const MATCHING: &[u8] = br#"{"e":[{"v":"21.4","u":"far","n":"temperature"},{"v":"55","u":"per","n":"humidity"}],"bt":1422748801000}"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Raw filtering of JSON data: quickstart ==\n");
    println!("Query (Listing 2):  $.e[?(@.n==\"temperature\" & @.v >= 0.7 & @.v <= 35.1)]\n");

    // Naive raw filter: string search AND value range, structure-agnostic.
    let naive = Expr::and([
        Expr::substring(b"temperature", 1)?,
        Expr::float_range("0.7", "35.1")?,
    ]);
    // Structure-aware raw filter: both must fire in the same measurement
    // object ({...} notation in the paper).
    let structural = Expr::context([
        Expr::substring(b"temperature", 1)?,
        Expr::float_range("0.7", "35.1")?,
    ]);

    let mut naive_f = CompiledFilter::compile(&naive);
    let mut struct_f = CompiledFilter::compile(&structural);

    println!("Record of Listing 1 (temperature = 35.2, out of range;");
    println!("but humidity \"12\" and airquality \"20\" are in range):\n");
    println!(
        "  naive     {:<55} -> {}",
        naive.to_string(),
        verdict(naive_f.accepts_record(LISTING1))
    );
    println!(
        "  structural {:<54} -> {}",
        structural.to_string(),
        verdict(struct_f.accepts_record(LISTING1))
    );
    println!("\nA record whose temperature IS in range:\n");
    println!(
        "  naive     -> {}",
        verdict(naive_f.accepts_record(MATCHING))
    );
    println!(
        "  structural -> {}",
        verdict(struct_f.accepts_record(MATCHING))
    );

    // What would each filter cost on the FPGA?
    println!("\nResource estimates (6-input LUT mapping of the elaborated RTL):");
    for (name, expr) in [("naive", &naive), ("structural", &structural)] {
        let r = exact_cost(expr);
        println!("  {name:<10} {r}");
    }
    println!("\nThe structural filter rejects Listing 1 (the naive one cannot),");
    println!("at a modest LUT premium — the §III-C trade-off of the paper.");
    Ok(())
}

fn verdict(accepted: bool) -> &'static str {
    if accepted {
        "ACCEPT (forward to parser)"
    } else {
        "DROP   (parser never sees it)"
    }
}

//! Design-space exploration (§III-D / §IV-A): enumerate raw-filter
//! configurations for a query, measure FPR and LUT cost, and print the
//! Pareto front in the paper's notation — a miniature of Tables V–VII.
//!
//! Run with: `cargo run -p rfjson-core --example design_explorer --release`

use rfjson_core::design::{explore, pareto, ExploreOptions};
use rfjson_core::expr::StringTechnique;
use rfjson_riotbench::{smartcity, Query};

fn main() {
    println!("== Design-space exploration for QS1 ==\n");
    let dataset = smartcity::generate(42, 2000);
    let query = Query::qs1();
    println!("query: {query}");
    println!(
        "dataset: {} records, measured selectivity {:.3}\n",
        dataset.len(),
        query.selectivity(&dataset)
    );

    let opts = ExploreOptions {
        techniques: vec![StringTechnique::Substring(1), StringTechnique::Substring(2)],
        include_string_only: true,
        include_plain_pairs: true,
        max_records: 1000,
        ..ExploreOptions::default()
    };
    let points = explore(&query, &dataset, &opts);
    println!("explored {} configurations", points.len());

    let front = pareto(&points);
    println!("\nPareto-optimal raw filters (cf. Table VI):\n");
    println!("{:>6}  {:>5}  configuration", "FPR", "LUTs");
    for p in &front {
        println!("{:>6.3}  {:>5}  {}", p.fpr, p.luts, p.notation(&query));
    }

    // The §IV-A observation: a small FPR allowance saves a lot of LUTs.
    if let (Some(best), Some(almost)) = (front.last(), front.iter().rev().nth(1)) {
        println!(
            "\nlast two rows: FPR {:.3} needs {} LUTs, FPR {:.3} only {} — \
             \"it may be worthwhile to allow a low FPR to save resources\"",
            best.fpr, best.luts, almost.fpr, almost.luts
        );
    }
}

//! The Fig. 2 walk-through: deriving a number filter for `i ≥ 35`,
//! then building the single range automaton for `12 ≤ i ≤ 49` and
//! elaborating it to RTL.
//!
//! Run with: `cargo run -p rfjson-core --example number_range`

use rfjson_core::cost::exact_cost;
use rfjson_core::expr::Expr;
use rfjson_redfa::range::{ge_int_regex, NumberBounds};
use rfjson_redfa::{Decimal, Dfa};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fig. 2: number filter build process for i >= 35 ==\n");
    let bound: Decimal = "35".parse()?;

    // Step 1: derive the regular expression (digit-wise case analysis).
    let regex = ge_int_regex(&bound);
    println!("step 1 (regex):   {regex}");

    // Step 2: convert to a DFA and minimise.
    let dfa = Dfa::from_regex(&regex);
    let min = dfa.minimized();
    println!(
        "step 2 (DFA):     {} states -> {} states after minimisation, {} input classes",
        dfa.num_states(),
        min.num_states(),
        min.num_classes()
    );
    println!("\n{min}");

    for probe in ["34", "35", "36", "99", "100", "9", "035"] {
        println!(
            "  {probe:>4} -> {}",
            if min.accepts(probe.as_bytes()) {
                "accept"
            } else {
                "reject"
            }
        );
    }

    println!("\n== The single range automaton for 12 <= i <= 49 ==\n");
    let bounds = NumberBounds::int_range(12, 49);
    let range_dfa = bounds.to_dfa_exact();
    let ge = Dfa::from_regex(&ge_int_regex(&"12".parse()?)).minimized();
    println!(
        "one automaton for the range: {} states (lower bound alone: {});",
        range_dfa.num_states(),
        ge.num_states()
    );
    println!("\"...which can later be optimized better than two separate automata\"\n");

    // And the exponent-tolerant version that actually gets synthesised:
    let hw_dfa = bounds.to_dfa();
    println!(
        "with the approximate exponent clause: {} states",
        hw_dfa.num_states()
    );
    for probe in ["11", "12", "49", "50", "2.1e3", "120e-1"] {
        println!(
            "  {probe:>7} -> {}",
            if hw_dfa.accepts(probe.as_bytes()) {
                "accept"
            } else {
                "reject"
            }
        );
    }

    let cost = exact_cost(&Expr::int_range(12, 49));
    println!("\nelaborated to RTL and LUT-mapped: {cost}");
    Ok(())
}
